"""Chrome/Perfetto trace export — the ``goofi trace export`` surface.

Turns a campaign's stored observability data into one Trace Event JSON
file loadable in ``ui.perfetto.dev`` (or ``chrome://tracing``):

* **Process 1 — wall clock.**  One lane per worker; each experiment
  span (``--telemetry=spans``) becomes a duration event at its real
  wall-clock time with its timed phase blocks nested inside.
* **Process 2 — simulation timeline.**  One lane per probed experiment
  (``--probes``), plotted in *simulated cycles* (1 cycle = 1µs of trace
  time): instant events for each probe's infection count, a duration
  event spanning the infected region (first divergence to detection or
  end), and an instant marking the EDM that fired.

The JSON shape follows the Trace Event Format: a ``traceEvents`` list
of ``ph``-typed events with microsecond ``ts`` timestamps.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.errors import AnalysisError
from ..db import GoofiDatabase

#: Trace process ids for the two timelines.
PID_WALL_CLOCK = 1
PID_SIMULATION = 2

_SECONDS_TO_US = 1e6


def _metadata(name: str, pid: int, tid: int, value: str) -> dict:
    return {
        "ph": "M",
        "name": name,
        "pid": pid,
        "tid": tid,
        "args": {"name": value},
    }


def _span_events(spans: list[dict]) -> list[dict]:
    """Wall-clock lanes: experiment duration events (one lane per
    worker) with their phase blocks nested inside."""
    events: list[dict] = []
    base = min(span.get("started_at", 0.0) for span in spans)
    workers = sorted({int(span.get("worker", 0)) for span in spans})
    events.append(
        _metadata("process_name", PID_WALL_CLOCK, 0, "goofi campaign (wall clock)")
    )
    for worker in workers:
        events.append(
            _metadata("thread_name", PID_WALL_CLOCK, worker, f"worker {worker}")
        )
    for span in spans:
        worker = int(span.get("worker", 0))
        start_us = (span.get("started_at", base) - base) * _SECONDS_TO_US
        events.append(
            {
                "ph": "X",
                "name": span["experiment"],
                "cat": "experiment",
                "pid": PID_WALL_CLOCK,
                "tid": worker,
                "ts": start_us,
                "dur": span.get("duration_seconds", 0.0) * _SECONDS_TO_US,
                "args": {
                    "outcome": span.get("outcome"),
                    "counters": span.get("counters", {}),
                },
            }
        )
        for name, offset, duration in span.get("events", []):
            events.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": "phase",
                    "pid": PID_WALL_CLOCK,
                    "tid": worker,
                    "ts": start_us + offset * _SECONDS_TO_US,
                    "dur": duration * _SECONDS_TO_US,
                }
            )
    return events


def _probe_events(payloads: list[dict]) -> list[dict]:
    """Simulation-timeline lanes: one per probed experiment, in cycles
    (1 cycle rendered as 1µs of trace time)."""
    events: list[dict] = [
        _metadata(
            "process_name", PID_SIMULATION, 0, "simulation timeline (cycles)"
        )
    ]
    for payload in payloads:
        tid = int(payload.get("index", 0))
        events.append(
            _metadata(
                "thread_name", PID_SIMULATION, tid, payload["experiment"]
            )
        )
        events.append(
            {
                "ph": "i",
                "name": "first injection",
                "cat": "injection",
                "pid": PID_SIMULATION,
                "tid": tid,
                "ts": float(payload.get("first_injection_cycle", 0)),
                "s": "t",
                "args": {"classes": payload.get("injected_classes", [])},
            }
        )
        for cycle, count in payload.get("infection_curve", []):
            events.append(
                {
                    "ph": "i",
                    "name": f"infected={count}",
                    "cat": "probe",
                    "pid": PID_SIMULATION,
                    "tid": tid,
                    "ts": float(cycle),
                    "s": "t",
                    "args": {"infected_elements": count},
                }
            )
        first_divergence = payload.get("first_divergence")
        if first_divergence is not None:
            until = payload.get("detection_cycle") or payload.get(
                "end_cycle", first_divergence
            )
            events.append(
                {
                    "ph": "X",
                    "name": "infected",
                    "cat": "propagation",
                    "pid": PID_SIMULATION,
                    "tid": tid,
                    "ts": float(first_divergence),
                    "dur": float(max(0, until - first_divergence)),
                    "args": {
                        "peak_infection": payload.get("peak_infection"),
                        "infected_classes": payload.get("infected_classes", []),
                    },
                }
            )
        detection = payload.get("detection")
        if detection:
            events.append(
                {
                    "ph": "i",
                    "name": f"EDM: {detection.get('mechanism', '?')}",
                    "cat": "detection",
                    "pid": PID_SIMULATION,
                    "tid": tid,
                    "ts": float(payload.get("detection_cycle") or 0),
                    "s": "t",
                    "args": detection,
                }
            )
    return events


def build_trace(db: GoofiDatabase, campaign_name: str) -> dict:
    """Assemble the Trace Event JSON document for one campaign from
    whatever observability data it stored — spans, probes, or both."""
    spans = [record.span for record in db.iter_spans(campaign_name)]
    payloads = [record.probe for record in db.iter_probes(campaign_name)]
    if not spans and not payloads:
        raise AnalysisError(
            f"campaign {campaign_name!r} has no spans or probes to export — "
            "run it with --telemetry=spans and/or --probes"
        )
    events: list[dict] = []
    if spans:
        events.extend(_span_events(spans))
    if payloads:
        events.extend(_probe_events(payloads))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "campaign": campaign_name,
            "spans": len(spans),
            "probes": len(payloads),
        },
    }


_REQUIRED_KEYS = ("ph", "name", "pid", "tid")


def validate_trace(trace: dict) -> None:
    """Check the Trace Event JSON shape (used by tests and the CI quick
    pipeline); raises :class:`AnalysisError` on the first violation."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise AnalysisError("trace must be an object with a traceEvents list")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        raise AnalysisError("traceEvents must be a non-empty list")
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise AnalysisError(f"traceEvents[{position}] is not an object")
        for key in _REQUIRED_KEYS:
            if key not in event:
                raise AnalysisError(
                    f"traceEvents[{position}] is missing {key!r}"
                )
        phase = event["ph"]
        if phase == "M":
            continue
        timestamp = event.get("ts")
        if not isinstance(timestamp, (int, float)) or timestamp < 0:
            raise AnalysisError(
                f"traceEvents[{position}] has invalid ts {timestamp!r}"
            )
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise AnalysisError(
                    f"traceEvents[{position}] has invalid dur {duration!r}"
                )
    json.dumps(trace)  # must round-trip: nothing non-serialisable inside


def write_trace(db: GoofiDatabase, campaign_name: str, path: str | Path) -> dict:
    """Build, validate, and write the trace; returns the document."""
    trace = build_trace(db, campaign_name)
    validate_trace(trace)
    Path(path).write_text(json.dumps(trace, indent=1), encoding="utf-8")
    return trace
