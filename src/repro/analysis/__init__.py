"""Analysis phase: classification, dependability measures, propagation
analysis, report rendering, and auto-generated analysis software."""

from .autogen import generate_analysis_script, generate_analysis_sql, run_generated_sql
from .dependability import (
    DependabilityModel,
    Interval,
    format_dependability_report,
    model_from_campaign,
)
from .latency import (
    LatencySample,
    LatencyStatistics,
    detection_latencies,
    format_latency_report,
)
from .export import COLUMNS, export_csv, export_csv_file, export_rows
from .sensitivity import (
    BitSensitivity,
    band_rates,
    bit_sensitivity,
    format_sensitivity_map,
)
from .samplesize import (
    SequentialPlan,
    achieved_half_width,
    required_experiments,
)
from .compare import (
    CampaignComparison,
    PairedOutcome,
    compare_campaigns,
    format_comparison,
)
from .classify import (
    CATEGORY_DETECTED,
    CATEGORY_ESCAPED,
    CATEGORY_LATENT,
    CATEGORY_OVERWRITTEN,
    CampaignClassification,
    Classification,
    classify_campaign,
    classify_experiment,
    state_difference,
)
from .measures import (
    GroupBreakdown,
    Proportion,
    detection_coverage,
    effectiveness,
    failure_rate,
    mechanism_shares,
    per_group_breakdown,
    per_location_breakdown,
    per_time_breakdown,
    proportion,
)
from .propagation import (
    PropagationAnalysis,
    TimelinePoint,
    analyze_propagation,
    propagation_summary,
)
from .reports import campaign_report, format_classification, format_measures
from .telemetry_report import (
    format_stats_report,
    phase_breakdown,
    stats_report,
    throughput_summary,
)

__all__ = [name for name in dir() if not name.startswith("_")]
