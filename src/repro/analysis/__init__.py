"""Analysis phase: classification, dependability measures, propagation
analysis, report rendering, and auto-generated analysis software."""

from .autogen import generate_analysis_script, generate_analysis_sql, run_generated_sql
from .dependability import (
    DependabilityModel,
    Interval,
    format_dependability_report,
    model_from_campaign,
)
from .gates import (
    BoundCheck,
    GateResult,
    count_critical_failures,
    evaluate_gate,
    format_gate_report,
)
from .latency import (
    LatencySample,
    LatencyStatistics,
    detection_latencies,
    format_latency_report,
)
from .export import COLUMNS, export_csv, export_csv_file, export_rows
from .sensitivity import (
    BitSensitivity,
    band_rates,
    bit_sensitivity,
    format_sensitivity_map,
)
from .samplesize import (
    SequentialPlan,
    achieved_half_width,
    required_experiments,
)
from .compare import (
    CampaignComparison,
    PairedOutcome,
    compare_campaigns,
    format_comparison,
)
from .classify import (
    CATEGORY_DETECTED,
    CATEGORY_ESCAPED,
    CATEGORY_LATENT,
    CATEGORY_OVERWRITTEN,
    CampaignClassification,
    Classification,
    classify_campaign,
    classify_experiment,
    state_difference,
)
from .measures import (
    GroupBreakdown,
    Proportion,
    detection_coverage,
    effectiveness,
    failure_rate,
    mechanism_shares,
    per_group_breakdown,
    per_location_breakdown,
    per_time_breakdown,
    proportion,
)
from .probes_report import (
    EdmCoverage,
    edm_coverage,
    format_propagation_report,
    infection_percentiles,
    propagation_report,
)
from .htmlreport import (
    render_campaign_report,
    render_index,
    write_campaign_report,
    write_index,
)
from .reports import campaign_report, format_classification, format_measures
from .telemetry_report import (
    format_stats_report,
    phase_breakdown,
    resource_summary,
    stats_report,
    throughput_summary,
)
from .trends import (
    TrendCheck,
    TrendResult,
    evaluate_trend,
    format_history,
    format_trend_report,
    record_run,
    run_summary,
    trend_against_history,
)
from .traceexport import build_trace, validate_trace, write_trace

#: Names served lazily from :mod:`repro.analysis.propagation`.  That
#: module imports :mod:`networkx` at module scope, which costs ~0.2 s —
#: paid by every ``goofi run`` if imported eagerly here, despite the
#: graph analysis only being needed by ``goofi analyze --graph`` style
#: consumers.  A module-level ``__getattr__`` (PEP 562) defers the
#: import until one of these names is first touched.
_PROPAGATION_NAMES = {
    "PropagationAnalysis",
    "TimelinePoint",
    "analyze_propagation",
    "propagation_summary",
}

__all__ = [name for name in dir() if not name.startswith("_")] + sorted(
    _PROPAGATION_NAMES
)


def __getattr__(name: str):
    if name in _PROPAGATION_NAMES:
        from . import propagation

        value = getattr(propagation, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
