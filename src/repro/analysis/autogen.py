"""Automatic generation of analysis software (paper §4, future work).

"Currently, there is no support for automatic generation of software
that analyses the LoggedSystemState table.  The user must write tailor
made scripts..." — and the future-extensions list promises exactly that
automation.  This module delivers it: given a campaign, it generates

* a ready-to-run **SQL script** (SQLite dialect, using the ``json_*``
  functions on the JSON columns) computing the §3.4 outcome counts, the
  per-mechanism breakdown, and campaign bookkeeping queries, and
* a standalone **Python script** that opens the database and prints the
  full classification report without importing this package.

Both are plain text artefacts the user can store next to the database,
edit, and re-run — the paper's "the user can then choose which analysis
software to use, and where to store the results".
"""

from __future__ import annotations

from ..db import GoofiDatabase, reference_name

SQL_TEMPLATE = """\
-- Auto-generated GOOFI analysis script for campaign {campaign!r}.
-- Outcome counts over LoggedSystemState (reference run excluded).

-- Experiments per termination outcome
SELECT json_extract(stateVector, '$.termination.outcome') AS outcome,
       COUNT(*) AS experiments
FROM LoggedSystemState
WHERE campaignName = '{campaign}'
  AND experimentName <> '{reference}'
GROUP BY outcome
ORDER BY experiments DESC;

-- Detected errors per error-detection mechanism
SELECT json_extract(stateVector, '$.termination.detection.mechanism') AS mechanism,
       COUNT(*) AS detected
FROM LoggedSystemState
WHERE campaignName = '{campaign}'
  AND experimentName <> '{reference}'
  AND json_extract(stateVector, '$.termination.outcome') = 'error_detected'
GROUP BY mechanism
ORDER BY detected DESC;

-- Experiments whose faults were all applied
SELECT COUNT(*) AS fully_injected
FROM LoggedSystemState
WHERE campaignName = '{campaign}'
  AND experimentName <> '{reference}'
  AND NOT EXISTS (
      SELECT 1 FROM json_each(json_extract(experimentData, '$.faults'))
      WHERE json_extract(json_each.value, '$.applied') = 0
  );

-- Detail-mode re-runs and their parents
SELECT experimentName, parentExperiment
FROM LoggedSystemState
WHERE campaignName = '{campaign}'
  AND parentExperiment IS NOT NULL;
"""

PYTHON_TEMPLATE = '''\
#!/usr/bin/env python3
"""Auto-generated GOOFI analysis program for campaign {campaign!r}.

Runs against the GOOFI SQLite database directly; no imports from the
GOOFI package are needed, so the script stays runnable wherever the
database file travels.
"""

import json
import sqlite3
import sys


CAMPAIGN = {campaign!r}
REFERENCE = {reference!r}


def outputs(state):
    return [(p, v) for _c, p, v in state.get("outputs", [])]


def flat(state):
    result = {{}}
    for key, value in state.get("scan", {{}}).items():
        result["scan:" + key] = value
    for key, value in state.get("memory", {{}}).items():
        result["mem:" + key] = value
    return result


def main(db_path):
    conn = sqlite3.connect(db_path)
    row = conn.execute(
        "SELECT stateVector FROM LoggedSystemState WHERE experimentName = ?",
        (REFERENCE,),
    ).fetchone()
    if row is None:
        raise SystemExit(f"no reference run for campaign {{CAMPAIGN!r}}")
    reference = json.loads(row[0])
    ref_final = reference["final"]

    counts = {{"detected": 0, "escaped": 0, "latent": 0, "overwritten": 0}}
    mechanisms = {{}}
    cur = conn.execute(
        "SELECT experimentName, stateVector FROM LoggedSystemState "
        "WHERE campaignName = ? AND experimentName <> ?",
        (CAMPAIGN, REFERENCE),
    )
    for name, state_json in cur:
        state = json.loads(state_json)
        term = state["termination"]
        if term["outcome"] == "error_detected":
            counts["detected"] += 1
            mechanism = (term.get("detection") or {{}}).get("mechanism", "unknown")
            mechanisms[mechanism] = mechanisms.get(mechanism, 0) + 1
        elif term["outcome"] == "timeout":
            counts["escaped"] += 1
        elif outputs(state["final"]) != outputs(ref_final):
            counts["escaped"] += 1
        elif flat(state["final"]) != flat(ref_final):
            counts["latent"] += 1
        else:
            counts["overwritten"] += 1

    total = sum(counts.values())
    print(f"Campaign {{CAMPAIGN}}: {{total}} experiments")
    for category, count in counts.items():
        share = count / total if total else 0.0
        print(f"  {{category:<12}} {{count:6d}}  ({{share:6.1%}})")
    if mechanisms:
        print("  detected by mechanism:")
        for mechanism, count in sorted(mechanisms.items(), key=lambda kv: -kv[1]):
            print(f"    {{mechanism:<16}} {{count:6d}}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "goofi.db")
'''


def generate_analysis_sql(campaign_name: str) -> str:
    """The SQL analysis script for one campaign."""
    return SQL_TEMPLATE.format(
        campaign=campaign_name, reference=reference_name(campaign_name)
    )


def generate_analysis_script(campaign_name: str) -> str:
    """The standalone Python analysis program for one campaign."""
    return PYTHON_TEMPLATE.format(
        campaign=campaign_name, reference=reference_name(campaign_name)
    )


def run_generated_sql(db: GoofiDatabase, sql: str) -> list[list[tuple]]:
    """Execute each SELECT of a generated SQL script, returning one row
    list per statement (used by tests and the CLI's ``analyze --sql``)."""
    results = []
    for statement in sql.split(";"):
        stripped = "\n".join(
            line for line in statement.splitlines() if not line.strip().startswith("--")
        ).strip()
        if stripped:
            results.append(db.execute_sql(stripped))
    return results
