"""Error-detection latency analysis.

A classic measure of fault-injection studies of the paper's era (and of
the Thor evaluations the group published): how long after injection an
error-detection mechanism fires.  Latency matters because it bounds how
stale a detected-then-recovered computation can be — short latencies are
what make backward recovery cheap.

Inputs are the ``LoggedSystemState`` rows: each detected experiment
carries the detection cycle in its termination record and the injection
cycle(s) in its ``experimentData``.  Latency is measured from the first
applied fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import AnalysisError
from ..db import ExperimentRecord, GoofiDatabase


class MissingDetectionCycle(AnalysisError):
    """A detected experiment whose detection event carries no cycle —
    no latency can be computed for it.  Non-strict analysis skips (and
    counts) such records instead of fabricating zero-latency samples."""


@dataclass(frozen=True, slots=True)
class LatencySample:
    """Detection latency of one detected experiment."""

    experiment_name: str
    mechanism: str
    injection_cycle: int
    detection_cycle: int

    @property
    def latency(self) -> int:
        return self.detection_cycle - self.injection_cycle


@dataclass(slots=True)
class LatencyStatistics:
    """Distribution statistics of detection latencies (in cycles).

    Empty-set sentinels are consistently NaN across mean/median/
    percentile/maximum (``0`` would be indistinguishable from a real
    zero-cycle latency).  ``skipped`` counts detected records whose
    detection event carried no cycle.
    """

    samples: list[LatencySample] = field(default_factory=list)
    skipped: int = 0

    @property
    def count(self) -> int:
        return len(self.samples)

    def _values(self) -> np.ndarray:
        return np.array([s.latency for s in self.samples], dtype=float)

    @property
    def mean(self) -> float:
        return float(self._values().mean()) if self.samples else float("nan")

    @property
    def median(self) -> float:
        return float(np.median(self._values())) if self.samples else float("nan")

    def percentile(self, q: float) -> float:
        if not self.samples:
            return float("nan")
        return float(np.percentile(self._values(), q))

    @property
    def maximum(self) -> float:
        if not self.samples:
            return float("nan")
        return float(max(s.latency for s in self.samples))

    def by_mechanism(self) -> dict[str, "LatencyStatistics"]:
        split: dict[str, LatencyStatistics] = {}
        for sample in self.samples:
            split.setdefault(sample.mechanism, LatencyStatistics()).samples.append(sample)
        return split

    def histogram(self, bins: int = 10) -> list[tuple[float, float, int]]:
        """(bin start, bin end, count) over latency values.

        Bin edges stay floats: truncating them to ints produces
        overlapping/duplicate boundaries for narrow distributions.
        """
        if not self.samples:
            return []
        values = self._values()
        counts, edges = np.histogram(values, bins=bins)
        return [
            (float(edges[i]), float(edges[i + 1]), int(counts[i]))
            for i in range(len(counts))
        ]


def _latency_of(record: ExperimentRecord, strict: bool = False) -> LatencySample | None:
    """The latency sample of one record, or ``None`` for records that
    carry no latency (not detected, or no applied fault).

    A detected record whose detection event has no cycle cannot yield a
    sample either: returning the injection cycle instead would fabricate
    a latency-0 sample.  Such records raise
    :class:`MissingDetectionCycle` under ``strict`` and are skipped
    (``None``) otherwise.
    """
    termination = record.state_vector.get("termination", {})
    if termination.get("outcome") != "error_detected":
        return None
    detection = termination.get("detection") or {}
    faults = [
        f for f in record.experiment_data.get("faults", []) if f.get("applied")
    ]
    if not faults:
        return None
    injection = min(int(f["injection_cycle"]) for f in faults)
    if detection.get("cycle") is None:
        if strict:
            raise MissingDetectionCycle(
                f"experiment {record.experiment_name!r} was detected but its "
                f"detection event carries no cycle; cannot compute a latency"
            )
        return None
    detection_cycle = int(detection["cycle"])
    if detection_cycle < injection:
        raise AnalysisError(
            f"experiment {record.experiment_name!r} detected at cycle "
            f"{detection_cycle}, before its injection at {injection}"
        )
    return LatencySample(
        experiment_name=record.experiment_name,
        mechanism=detection.get("mechanism", "unknown"),
        injection_cycle=injection,
        detection_cycle=detection_cycle,
    )


def detection_latencies(
    db: GoofiDatabase, campaign_name: str, strict: bool = False
) -> LatencyStatistics:
    """Latency statistics over every detected experiment of a campaign.

    Detected records without a detection cycle are counted in
    ``skipped`` (and reported) — or, under ``strict``, raise
    :class:`MissingDetectionCycle`.
    """
    statistics = LatencyStatistics()
    for record in db.iter_experiments(campaign_name):
        if record.experiment_data.get("technique") == "reference":
            continue
        try:
            sample = _latency_of(record, strict=True)
        except MissingDetectionCycle:
            if strict:
                raise
            statistics.skipped += 1
            continue
        if sample is not None:
            statistics.samples.append(sample)
    return statistics


def format_latency_report(statistics: LatencyStatistics, title: str) -> str:
    """Plain-text latency table: overall and per mechanism."""
    lines = [
        title,
        f"{'mechanism':<18}{'n':>6}{'mean':>10}{'median':>10}{'p95':>10}{'max':>10}",
        "-" * 64,
    ]

    def row(label: str, stats: LatencyStatistics) -> str:
        if stats.count == 0:
            empty = "n/a"
            return (
                f"{label:<18}{stats.count:>6}{empty:>10}{empty:>10}"
                f"{empty:>10}{empty:>10}"
            )
        return (
            f"{label:<18}{stats.count:>6}{stats.mean:>10.1f}{stats.median:>10.1f}"
            f"{stats.percentile(95):>10.1f}{stats.maximum:>10.0f}"
        )

    lines.append(row("(all)", statistics))
    for mechanism, stats in sorted(statistics.by_mechanism().items()):
        lines.append(row(mechanism, stats))
    if statistics.skipped:
        lines.append(
            f"({statistics.skipped} detected record(s) skipped: "
            f"no detection cycle)"
        )
    return "\n".join(lines)
