"""Render campaign telemetry snapshots — the ``goofi stats`` surface.

Works from the JSON-able snapshot a telemetered run stores in the
``CampaignTelemetry`` table (or streams to JSONL): phase-time
breakdown, throughput, fast-path and checkpoint hit rates, database
batch latency, and — when the run logged spans — the slowest
experiments.
"""

from __future__ import annotations

from ..core.errors import AnalysisError
from ..db import GoofiDatabase


def _fmt_secs(seconds: float) -> str:
    """Adaptive duration formatting: µs/ms below a second, otherwise
    the compact minutes form used by the progress line."""
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60:
        return f"{seconds:.2f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    return f"{minutes}m{secs:02d}s"


def _fmt_count(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.1f}"


def _fmt_bytes(value: float | None) -> str:
    if value is None:
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return f"{value:,.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:,.1f}GiB"  # pragma: no cover - loop always returns


def phase_breakdown(snapshot: dict) -> list[tuple[str, float, int]]:
    """``(phase, total_seconds, calls)`` for every ``phase.*`` timer,
    slowest first."""
    rows = []
    for name, stat in snapshot.get("timers", {}).items():
        if name.startswith("phase."):
            rows.append((name[len("phase."):], stat["seconds"], stat["count"]))
    rows.sort(key=lambda row: -row[1])
    return rows


def _ratio_line(label: str, hits: float, total: float) -> str:
    share = hits / total if total else 0.0
    return f"  {label:<22}: {_fmt_count(hits)} of {_fmt_count(total)} ({share:.1%})"


def resource_summary(samples: list[dict]) -> dict:
    """Fold ``ResourceSample`` rows (sample dicts, see
    :data:`repro.core.resources.RESOURCE_SAMPLE_KEYS`) into per-worker
    and campaign-wide totals.

    CPU counters inside a sample are *cumulative* for that process, so
    a worker's total is its last sample; campaign CPU is the sum of the
    per-worker totals.  RSS and shared-memory footprints are peaks
    (max over samples).
    """
    workers: dict[int, dict] = {}
    for sample in samples:
        worker = sample.get("worker", 0)
        entry = workers.setdefault(
            worker,
            {
                "samples": 0,
                "source": sample.get("source"),
                "cpu_user_seconds": 0.0,
                "cpu_system_seconds": 0.0,
                "peak_rss_bytes": None,
                "peak_shm_bytes": None,
                "timeline": [],
            },
        )
        entry["samples"] += 1
        if sample.get("cpu_user_seconds") is not None:
            entry["cpu_user_seconds"] = sample["cpu_user_seconds"]
        if sample.get("cpu_system_seconds") is not None:
            entry["cpu_system_seconds"] = sample["cpu_system_seconds"]
        for key, peak in (("rss_bytes", "peak_rss_bytes"),
                          ("shm_bytes", "peak_shm_bytes")):
            value = sample.get(key)
            if value is not None:
                current = entry[peak]
                entry[peak] = value if current is None else max(current, value)
        entry["timeline"].append(
            (sample.get("uptime_seconds", 0.0), sample.get("rss_bytes"))
        )
    peaks_rss = [w["peak_rss_bytes"] for w in workers.values()
                 if w["peak_rss_bytes"] is not None]
    peaks_shm = [w["peak_shm_bytes"] for w in workers.values()
                 if w["peak_shm_bytes"] is not None]
    return {
        "samples": len(samples),
        "workers": workers,
        "cpu_user_seconds": sum(w["cpu_user_seconds"] for w in workers.values()),
        "cpu_system_seconds": sum(
            w["cpu_system_seconds"] for w in workers.values()
        ),
        "peak_rss_bytes": max(peaks_rss) if peaks_rss else None,
        "peak_shm_bytes": max(peaks_shm) if peaks_shm else None,
    }


def _worker_label(worker: int) -> str:
    # The serial loop and the parallel coordinator sample as well;
    # COORDINATOR_WORKER (-1) reads better spelled out.
    return "coordinator" if worker < 0 else f"worker {worker}"


def format_stats_report(
    campaign_name: str, snapshot: dict, spans: list[dict] | None = None,
    slowest: int = 5, resources: list[dict] | None = None,
) -> str:
    """The full ``goofi stats`` report for one campaign."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    timers = snapshot.get("timers", {})

    workers = int(gauges.get("workers", 1))
    elapsed = gauges.get("elapsed_seconds", 0.0)
    experiments = counters.get("experiments", 0)
    instructions = counters.get("instructions", 0)

    lines = [
        f"Telemetry for campaign {campaign_name!r} "
        f"({workers} worker{'s' if workers != 1 else ''}):",
    ]

    phases = phase_breakdown(snapshot)
    if phases:
        phase_total = sum(seconds for _, seconds, _ in phases)
        name_width = max(12, max(len(name) for name, _, _ in phases) + 1)
        lines += [
            "",
            "Phase-time breakdown (summed across workers):",
            f"  {'phase':<{name_width}}{'total':>10}{'calls':>8}{'mean':>10}{'share':>8}",
        ]
        for name, seconds, count in phases:
            mean = seconds / count if count else 0.0
            share = seconds / phase_total if phase_total else 0.0
            lines.append(
                f"  {name:<{name_width}}{_fmt_secs(seconds):>10}{count:>8}"
                f"{_fmt_secs(mean):>10}{share:>8.1%}"
            )

    lines += ["", "Throughput:"]
    lines.append(f"  {'experiments':<22}: {_fmt_count(experiments)}")
    if elapsed:
        lines.append(f"  {'wall-clock':<22}: {_fmt_secs(elapsed)}")
        lines.append(
            f"  {'experiments/s':<22}: {experiments / elapsed:,.1f}"
        )
    if instructions:
        lines.append(f"  {'instructions (cycles)':<22}: {_fmt_count(instructions)}")
        if elapsed:
            lines.append(
                f"  {'instructions/s':<22}: {instructions / elapsed:,.0f}"
            )

    startup = timers.get("phase.worker_startup")
    if startup and startup.get("count"):
        # Worker setup (attach shared state or re-derive it locally) is
        # pure overhead of fanning out — called out explicitly so the
        # shared-memory fast path is visible at a glance.
        count = startup["count"]
        lines += ["", "Parallel workers:"]
        lines.append(
            f"  {'startup (per worker)':<22}: mean "
            f"{_fmt_secs(startup['seconds'] / count)} across "
            f"{_fmt_count(count)} workers"
        )

    fast = counters.get("engine.fast_segments", 0)
    ref = counters.get("engine.ref_segments", 0)
    if fast or ref:
        lines += ["", "Execution engine:"]
        lines.append(_ratio_line("fast-path segments", fast, fast + ref))

    restores = counters.get("checkpoint.restores", 0)
    misses = counters.get("checkpoint.misses", 0)
    if restores or misses:
        lines += ["", "Checkpointing:"]
        lines.append(_ratio_line("restored prefixes", restores, restores + misses))
        saves = counters.get("checkpoint.saves", 0)
        evictions = counters.get("checkpoint.cache.evictions", 0)
        lines.append(
            f"  {'cache':<22}: {_fmt_count(saves)} saves, "
            f"{_fmt_count(evictions)} evictions"
        )

    rows = counters.get("db.rows", 0)
    batches = counters.get("db.batches", 0)
    db_write = timers.get("phase.db_write")
    if batches:
        lines += ["", "Database:"]
        lines.append(
            f"  {'rows written':<22}: {_fmt_count(rows)} in "
            f"{_fmt_count(batches)} batches"
        )
        if db_write and db_write["count"]:
            lines.append(
                f"  {'batch write':<22}: mean "
                f"{_fmt_secs(db_write['seconds'] / db_write['count'])}, total "
                f"{_fmt_secs(db_write['seconds'])}"
            )

    histogram = snapshot.get("histograms", {}).get("experiment.seconds")
    if histogram and sum(histogram["counts"]):
        lines += ["", "Experiment duration distribution:"]
        buckets = []
        for bound, count in zip(histogram["bounds"], histogram["counts"]):
            if count:
                buckets.append(f"<={_fmt_secs(bound)}: {count}")
        overflow = histogram["counts"][len(histogram["bounds"])]
        if overflow:
            buckets.append(f">{_fmt_secs(histogram['bounds'][-1])}: {overflow}")
        lines.append("  " + "   ".join(buckets))

    if resources:
        folded = resource_summary(resources)
        lines += ["", f"Resources ({folded['samples']} samples):"]
        for worker in sorted(folded["workers"]):
            entry = folded["workers"][worker]
            cpu = entry["cpu_user_seconds"] + entry["cpu_system_seconds"]
            lines.append(
                f"  {_worker_label(worker):<22}: "
                f"{entry['samples']:>4} samples, cpu {_fmt_secs(cpu)}, "
                f"peak rss {_fmt_bytes(entry['peak_rss_bytes'])}, "
                f"peak shm {_fmt_bytes(entry['peak_shm_bytes'])} "
                f"[{entry['source'] or 'unavailable'}]"
            )
        total_cpu = folded["cpu_user_seconds"] + folded["cpu_system_seconds"]
        lines.append(
            f"  {'total cpu':<22}: {_fmt_secs(total_cpu)} "
            f"(user {_fmt_secs(folded['cpu_user_seconds'])}, "
            f"system {_fmt_secs(folded['cpu_system_seconds'])})"
        )
        lines.append(
            f"  {'peak rss (any worker)':<22}: "
            f"{_fmt_bytes(folded['peak_rss_bytes'])}"
        )
        if folded["peak_shm_bytes"] is not None:
            lines.append(
                f"  {'peak shared memory':<22}: "
                f"{_fmt_bytes(folded['peak_shm_bytes'])}"
            )

    if spans:
        ranked = sorted(
            spans, key=lambda span: -span.get("duration_seconds", 0.0)
        )[:slowest]
        lines += ["", f"Slowest experiments (of {len(spans)} spans):"]
        for span in ranked:
            span_phases = span.get("phases", {})
            dominant = max(span_phases, key=span_phases.get) if span_phases else "-"
            lines.append(
                f"  {span['experiment']:<32} "
                f"{_fmt_secs(span.get('duration_seconds', 0.0)):>10}  "
                f"{span.get('outcome') or '?':<16} dominant: {dominant}"
            )
    return "\n".join(lines)


def stats_report(
    db: GoofiDatabase, campaign_name: str, slowest: int = 5
) -> str:
    """Load a campaign's stored telemetry and render the report.

    Resource samples live in their own table and do not require a
    telemetry snapshot — a run with ``--resources`` but no
    ``--telemetry`` still gets a report (with just the Resources
    section)."""
    resources = [
        record.sample for record in db.iter_resource_samples(campaign_name)
    ]
    try:
        snapshot = db.load_campaign_telemetry(campaign_name)
    except Exception:
        if not resources:
            raise
        snapshot = {}
    spans = [record.span for record in db.iter_spans(campaign_name)]
    return format_stats_report(
        campaign_name, snapshot, spans=spans or None, slowest=slowest,
        resources=resources or None,
    )


def telemetry_section(db: GoofiDatabase, campaign_name: str) -> str | None:
    """The stats report when the campaign has a stored snapshot, else
    ``None`` — lets :func:`repro.analysis.reports.campaign_report`
    append telemetry without requiring it."""
    try:
        return stats_report(db, campaign_name)
    except Exception:
        return None


def throughput_summary(snapshot: dict) -> dict:
    """Machine-readable headline numbers (used by benches and tests)."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    elapsed = gauges.get("elapsed_seconds", 0.0)
    experiments = counters.get("experiments", 0)
    instructions = counters.get("instructions", 0)
    if not experiments:
        raise AnalysisError("telemetry snapshot holds no finished experiments")
    return {
        "experiments": experiments,
        "instructions": instructions,
        "elapsed_seconds": elapsed,
        "experiments_per_second": experiments / elapsed if elapsed else None,
        "instructions_per_second": instructions / elapsed if elapsed else None,
        "workers": int(gauges.get("workers", 1)),
    }
