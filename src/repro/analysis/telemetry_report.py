"""Render campaign telemetry snapshots — the ``goofi stats`` surface.

Works from the JSON-able snapshot a telemetered run stores in the
``CampaignTelemetry`` table (or streams to JSONL): phase-time
breakdown, throughput, fast-path and checkpoint hit rates, database
batch latency, and — when the run logged spans — the slowest
experiments.
"""

from __future__ import annotations

from ..core.errors import AnalysisError
from ..db import GoofiDatabase


def _fmt_secs(seconds: float) -> str:
    """Adaptive duration formatting: µs/ms below a second, otherwise
    the compact minutes form used by the progress line."""
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60:
        return f"{seconds:.2f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    return f"{minutes}m{secs:02d}s"


def _fmt_count(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.1f}"


def phase_breakdown(snapshot: dict) -> list[tuple[str, float, int]]:
    """``(phase, total_seconds, calls)`` for every ``phase.*`` timer,
    slowest first."""
    rows = []
    for name, stat in snapshot.get("timers", {}).items():
        if name.startswith("phase."):
            rows.append((name[len("phase."):], stat["seconds"], stat["count"]))
    rows.sort(key=lambda row: -row[1])
    return rows


def _ratio_line(label: str, hits: float, total: float) -> str:
    share = hits / total if total else 0.0
    return f"  {label:<22}: {_fmt_count(hits)} of {_fmt_count(total)} ({share:.1%})"


def format_stats_report(
    campaign_name: str, snapshot: dict, spans: list[dict] | None = None,
    slowest: int = 5,
) -> str:
    """The full ``goofi stats`` report for one campaign."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    timers = snapshot.get("timers", {})

    workers = int(gauges.get("workers", 1))
    elapsed = gauges.get("elapsed_seconds", 0.0)
    experiments = counters.get("experiments", 0)
    instructions = counters.get("instructions", 0)

    lines = [
        f"Telemetry for campaign {campaign_name!r} "
        f"({workers} worker{'s' if workers != 1 else ''}):",
    ]

    phases = phase_breakdown(snapshot)
    if phases:
        phase_total = sum(seconds for _, seconds, _ in phases)
        name_width = max(12, max(len(name) for name, _, _ in phases) + 1)
        lines += [
            "",
            "Phase-time breakdown (summed across workers):",
            f"  {'phase':<{name_width}}{'total':>10}{'calls':>8}{'mean':>10}{'share':>8}",
        ]
        for name, seconds, count in phases:
            mean = seconds / count if count else 0.0
            share = seconds / phase_total if phase_total else 0.0
            lines.append(
                f"  {name:<{name_width}}{_fmt_secs(seconds):>10}{count:>8}"
                f"{_fmt_secs(mean):>10}{share:>8.1%}"
            )

    lines += ["", "Throughput:"]
    lines.append(f"  {'experiments':<22}: {_fmt_count(experiments)}")
    if elapsed:
        lines.append(f"  {'wall-clock':<22}: {_fmt_secs(elapsed)}")
        lines.append(
            f"  {'experiments/s':<22}: {experiments / elapsed:,.1f}"
        )
    if instructions:
        lines.append(f"  {'instructions (cycles)':<22}: {_fmt_count(instructions)}")
        if elapsed:
            lines.append(
                f"  {'instructions/s':<22}: {instructions / elapsed:,.0f}"
            )

    startup = timers.get("phase.worker_startup")
    if startup and startup.get("count"):
        # Worker setup (attach shared state or re-derive it locally) is
        # pure overhead of fanning out — called out explicitly so the
        # shared-memory fast path is visible at a glance.
        count = startup["count"]
        lines += ["", "Parallel workers:"]
        lines.append(
            f"  {'startup (per worker)':<22}: mean "
            f"{_fmt_secs(startup['seconds'] / count)} across "
            f"{_fmt_count(count)} workers"
        )

    fast = counters.get("engine.fast_segments", 0)
    ref = counters.get("engine.ref_segments", 0)
    if fast or ref:
        lines += ["", "Execution engine:"]
        lines.append(_ratio_line("fast-path segments", fast, fast + ref))

    restores = counters.get("checkpoint.restores", 0)
    misses = counters.get("checkpoint.misses", 0)
    if restores or misses:
        lines += ["", "Checkpointing:"]
        lines.append(_ratio_line("restored prefixes", restores, restores + misses))
        saves = counters.get("checkpoint.saves", 0)
        evictions = counters.get("checkpoint.cache.evictions", 0)
        lines.append(
            f"  {'cache':<22}: {_fmt_count(saves)} saves, "
            f"{_fmt_count(evictions)} evictions"
        )

    rows = counters.get("db.rows", 0)
    batches = counters.get("db.batches", 0)
    db_write = timers.get("phase.db_write")
    if batches:
        lines += ["", "Database:"]
        lines.append(
            f"  {'rows written':<22}: {_fmt_count(rows)} in "
            f"{_fmt_count(batches)} batches"
        )
        if db_write and db_write["count"]:
            lines.append(
                f"  {'batch write':<22}: mean "
                f"{_fmt_secs(db_write['seconds'] / db_write['count'])}, total "
                f"{_fmt_secs(db_write['seconds'])}"
            )

    histogram = snapshot.get("histograms", {}).get("experiment.seconds")
    if histogram and sum(histogram["counts"]):
        lines += ["", "Experiment duration distribution:"]
        buckets = []
        for bound, count in zip(histogram["bounds"], histogram["counts"]):
            if count:
                buckets.append(f"<={_fmt_secs(bound)}: {count}")
        overflow = histogram["counts"][len(histogram["bounds"])]
        if overflow:
            buckets.append(f">{_fmt_secs(histogram['bounds'][-1])}: {overflow}")
        lines.append("  " + "   ".join(buckets))

    if spans:
        ranked = sorted(
            spans, key=lambda span: -span.get("duration_seconds", 0.0)
        )[:slowest]
        lines += ["", f"Slowest experiments (of {len(spans)} spans):"]
        for span in ranked:
            span_phases = span.get("phases", {})
            dominant = max(span_phases, key=span_phases.get) if span_phases else "-"
            lines.append(
                f"  {span['experiment']:<32} "
                f"{_fmt_secs(span.get('duration_seconds', 0.0)):>10}  "
                f"{span.get('outcome') or '?':<16} dominant: {dominant}"
            )
    return "\n".join(lines)


def stats_report(
    db: GoofiDatabase, campaign_name: str, slowest: int = 5
) -> str:
    """Load a campaign's stored telemetry and render the report."""
    snapshot = db.load_campaign_telemetry(campaign_name)
    spans = [record.span for record in db.iter_spans(campaign_name)]
    return format_stats_report(
        campaign_name, snapshot, spans=spans or None, slowest=slowest
    )


def telemetry_section(db: GoofiDatabase, campaign_name: str) -> str | None:
    """The stats report when the campaign has a stored snapshot, else
    ``None`` — lets :func:`repro.analysis.reports.campaign_report`
    append telemetry without requiring it."""
    try:
        return stats_report(db, campaign_name)
    except Exception:
        return None


def throughput_summary(snapshot: dict) -> dict:
    """Machine-readable headline numbers (used by benches and tests)."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    elapsed = gauges.get("elapsed_seconds", 0.0)
    experiments = counters.get("experiments", 0)
    instructions = counters.get("instructions", 0)
    if not experiments:
        raise AnalysisError("telemetry snapshot holds no finished experiments")
    return {
        "experiments": experiments,
        "instructions": instructions,
        "elapsed_seconds": elapsed,
        "experiments_per_second": experiments / elapsed if elapsed else None,
        "instructions_per_second": instructions / elapsed if elapsed else None,
        "workers": int(gauges.get("workers", 1)),
    }
