"""Dependability measures derived from campaign classifications.

"The data in the database table LoggedSystemState is analysed in the
analysis phase in order to obtain various dependability measures" —
chiefly *error-detection coverage*, the probability that an effective
error is caught by the target's error-detection mechanisms.  Coverage
estimates from fault-injection sampling are proportions, so every
measure carries a Clopper–Pearson confidence interval.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from scipy import stats

from ..core.errors import AnalysisError
from ..core.locations import Location
from ..db import ExperimentRecord, GoofiDatabase
from .classify import (
    CampaignClassification,
    Classification,
    classify_campaign,
)


@dataclass(frozen=True, slots=True)
class Proportion:
    """A binomial proportion with a two-sided confidence interval."""

    successes: int
    trials: int
    estimate: float
    ci_low: float
    ci_high: float
    confidence: float = 0.95

    def __str__(self) -> str:
        return (
            f"{self.estimate:.3f} "
            f"[{self.ci_low:.3f}, {self.ci_high:.3f}] "
            f"({self.successes}/{self.trials})"
        )


def proportion(successes: int, trials: int, confidence: float = 0.95) -> Proportion:
    """Clopper–Pearson (exact beta) interval for a binomial proportion."""
    if trials < 0 or successes < 0 or successes > trials:
        raise AnalysisError(f"bad proportion {successes}/{trials}")
    if trials == 0:
        return Proportion(0, 0, float("nan"), 0.0, 1.0, confidence)
    alpha = 1.0 - confidence
    estimate = successes / trials
    if successes == 0:
        low = 0.0
    else:
        low = float(stats.beta.ppf(alpha / 2, successes, trials - successes + 1))
    if successes == trials:
        high = 1.0
    else:
        high = float(stats.beta.ppf(1 - alpha / 2, successes + 1, trials - successes))
    return Proportion(successes, trials, estimate, low, high, confidence)


def detection_coverage(classification: CampaignClassification) -> Proportion:
    """Error-detection coverage: detected / effective errors."""
    return proportion(classification.detected, classification.effective)


def effectiveness(classification: CampaignClassification) -> Proportion:
    """Fraction of injected faults that produced an effective error."""
    return proportion(classification.effective, classification.total)


def failure_rate(classification: CampaignClassification) -> Proportion:
    """Fraction of injected faults that escaped detection and caused a
    failure (wrong output or timeliness violation)."""
    return proportion(classification.escaped, classification.total)


def mechanism_shares(classification: CampaignClassification) -> dict[str, Proportion]:
    """Per-mechanism share of all detected errors."""
    total_detected = classification.detected
    return {
        mechanism: proportion(count, total_detected)
        for mechanism, count in sorted(classification.by_mechanism().items())
    }


# ----------------------------------------------------------------------
# Per-location and per-time breakdowns
# ----------------------------------------------------------------------
def _first_fault_location(record: ExperimentRecord) -> str | None:
    faults = record.experiment_data.get("faults") or []
    if not faults:
        return None
    return Location.from_dict(faults[0]["location"]).element_key


def _first_fault_cycle(record: ExperimentRecord) -> int | None:
    faults = record.experiment_data.get("faults") or []
    if not faults:
        return None
    return int(faults[0]["injection_cycle"])


@dataclass(frozen=True, slots=True)
class GroupBreakdown:
    """Outcome counts for one group of experiments (a location or a
    time bin)."""

    group: str
    total: int
    detected: int
    escaped: int
    latent: int
    overwritten: int

    @property
    def effective(self) -> int:
        return self.detected + self.escaped

    def coverage(self) -> Proportion:
        return proportion(self.detected, self.effective)


def _aggregate(
    pairs: list[tuple], label=str
) -> list[GroupBreakdown]:
    """Aggregate (key, classification) pairs into per-group breakdowns.

    Groups are ordered by their *key* (string keys sort lexically, int
    keys numerically — which is what keeps time bins in order for
    campaigns of any length); ``label`` renders a key into the displayed
    group name.
    """
    groups: dict = defaultdict(list)
    for group, classification in pairs:
        groups[group].append(classification)
    breakdowns = []
    for group in sorted(groups):
        members = groups[group]
        counts = {
            category: sum(1 for m in members if m.category == category)
            for category in ("detected", "escaped", "latent", "overwritten")
        }
        breakdowns.append(
            GroupBreakdown(
                group=label(group),
                total=len(members),
                detected=counts["detected"],
                escaped=counts["escaped"],
                latent=counts["latent"],
                overwritten=counts["overwritten"],
            )
        )
    return breakdowns


def per_location_breakdown(
    db: GoofiDatabase, campaign_name: str
) -> list[GroupBreakdown]:
    """Outcome mix per injected location element (register, cache line,
    memory word, ...)."""
    classification = classify_campaign(db, campaign_name)
    by_name = {c.experiment_name: c for c in classification.classifications}
    pairs: list[tuple[str, Classification]] = []
    for record in db.iter_experiments(campaign_name):
        verdict = by_name.get(record.experiment_name)
        if verdict is None:
            continue
        group = _first_fault_location(record)
        if group is not None:
            pairs.append((group, verdict))
    return _aggregate(pairs)


def per_group_breakdown(
    db: GoofiDatabase, campaign_name: str
) -> list[GroupBreakdown]:
    """Outcome mix per location *group* (``regs``, ``ctrl``, ``icache``,
    ``dcache``, ``pins``, ``memory``) — the granularity at which the
    paper's analysis examples speak."""
    pairs: list[tuple[str, Classification]] = []
    classification = classify_campaign(db, campaign_name)
    by_name = {c.experiment_name: c for c in classification.classifications}
    for record in db.iter_experiments(campaign_name):
        verdict = by_name.get(record.experiment_name)
        if verdict is None:
            continue
        key = _first_fault_location(record)
        if key is None:
            continue
        if key.startswith("memory:"):
            group = "memory"
        else:
            _chain, _, element = key.partition(":")
            group = element.split(".")[0]
        pairs.append((group, verdict))
    return _aggregate(pairs)


def per_time_breakdown(
    db: GoofiDatabase, campaign_name: str, bins: int = 10
) -> list[GroupBreakdown]:
    """Outcome mix across the injection-time axis, in equal cycle bins."""
    classification = classify_campaign(db, campaign_name)
    by_name = {c.experiment_name: c for c in classification.classifications}
    cycles: list[tuple[int, Classification]] = []
    for record in db.iter_experiments(campaign_name):
        verdict = by_name.get(record.experiment_name)
        if verdict is None:
            continue
        cycle = _first_fault_cycle(record)
        if cycle is not None:
            cycles.append((cycle, verdict))
    if not cycles:
        return []
    top = max(cycle for cycle, _ in cycles) + 1
    width = max(1, -(-top // bins))  # ceil
    # Group by the numeric bin index, not a formatted label: fixed-width
    # labels sort lexically, which scrambles bins once campaigns exceed
    # the label width (routine for >1e6-cycle runs).
    pairs = [(c // width, verdict) for c, verdict in cycles]
    return _aggregate(
        pairs, label=lambda index: f"[{index * width}, {(index + 1) * width})"
    )
