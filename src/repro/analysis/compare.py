"""Paired campaign comparison.

The studies this tool exists for — "does mechanism X / protection Y
help?" — run the *same seeded fault list* against two system variants
and compare outcomes per experiment (paper ref [12] is exactly this
design; experiments E6 and E11 reproduce it).  This module does the
pairing: experiments are matched by plan index, their fault lists are
verified identical, and the result is an outcome *transition matrix*
("n faults that escaped on A were detected on B") — far more telling
than comparing two marginal tables.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..core.errors import AnalysisError
from ..db import GoofiDatabase, reference_name
from .classify import Classification, classify_campaign

#: Outcome order used for matrix rendering.
OUTCOMES = ("detected", "escaped", "latent", "overwritten")


@dataclass(frozen=True, slots=True)
class PairedOutcome:
    """One experiment's verdicts under both variants."""

    index: int
    fault_labels: tuple[str, ...]
    outcome_a: str
    outcome_b: str

    @property
    def changed(self) -> bool:
        return self.outcome_a != self.outcome_b


@dataclass(slots=True)
class CampaignComparison:
    """The paired comparison of two campaigns."""

    campaign_a: str
    campaign_b: str
    pairs: list[PairedOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.pairs)

    def transitions(self) -> dict[tuple[str, str], int]:
        """(outcome on A, outcome on B) -> count."""
        return dict(Counter((p.outcome_a, p.outcome_b) for p in self.pairs))

    def changed(self) -> list[PairedOutcome]:
        return [p for p in self.pairs if p.changed]

    def improvement(self, bad: tuple[str, ...] = ("escaped",)) -> int:
        """Experiments bad on A but not on B, minus the reverse — the
        net number of failures the B variant removed."""
        fixed = sum(
            1 for p in self.pairs if p.outcome_a in bad and p.outcome_b not in bad
        )
        regressed = sum(
            1 for p in self.pairs if p.outcome_a not in bad and p.outcome_b in bad
        )
        return fixed - regressed


def _by_index(db: GoofiDatabase, campaign: str,
              verdicts: dict[str, Classification]) -> dict[int, tuple]:
    experiments: dict[int, tuple] = {}
    for record in db.iter_experiments(campaign):
        if record.experiment_data.get("technique") == "reference":
            continue
        if record.experiment_name == reference_name(campaign):
            continue
        verdict = verdicts.get(record.experiment_name)
        if verdict is None:
            continue
        index = int(record.experiment_data.get("index", -1))
        faults = tuple(
            f"{f['location']}@{f['injection_cycle']}"
            for f in record.experiment_data.get("faults", [])
        )
        experiments[index] = (faults, verdict.category)
    return experiments


def compare_campaigns(
    db: GoofiDatabase,
    campaign_a: str,
    campaign_b: str,
    require_identical_faults: bool = True,
) -> CampaignComparison:
    """Pair two campaigns experiment-by-experiment.

    With ``require_identical_faults`` (the default), a mismatch in any
    paired fault list raises: comparing different fault lists silently
    would invalidate the study design.  Pass ``False`` when comparing
    campaigns on *different targets* (same seed, different location
    spaces), where only the outcome marginals are meaningful.
    """
    verdicts_a = {
        c.experiment_name: c for c in classify_campaign(db, campaign_a).classifications
    }
    verdicts_b = {
        c.experiment_name: c for c in classify_campaign(db, campaign_b).classifications
    }
    by_index_a = _by_index(db, campaign_a, verdicts_a)
    by_index_b = _by_index(db, campaign_b, verdicts_b)
    common = sorted(set(by_index_a) & set(by_index_b))
    if not common:
        raise AnalysisError(
            f"campaigns {campaign_a!r} and {campaign_b!r} share no experiment indices"
        )
    comparison = CampaignComparison(campaign_a=campaign_a, campaign_b=campaign_b)
    for index in common:
        faults_a, outcome_a = by_index_a[index]
        faults_b, outcome_b = by_index_b[index]
        if require_identical_faults and faults_a != faults_b:
            raise AnalysisError(
                f"experiment index {index} has different fault lists in "
                f"{campaign_a!r} and {campaign_b!r}; run both variants from "
                f"the same seed, or pass require_identical_faults=False"
            )
        comparison.pairs.append(
            PairedOutcome(
                index=index,
                fault_labels=faults_a,
                outcome_a=outcome_a,
                outcome_b=outcome_b,
            )
        )
    return comparison


def format_comparison(comparison: CampaignComparison) -> str:
    """Render the transition matrix (rows: outcome on A; columns: B)."""
    transitions = comparison.transitions()
    width = max(len(o) for o in OUTCOMES) + 2
    corner = "A \\ B"
    header = f"{corner:<{width}}" + "".join(f"{o:>{width}}" for o in OUTCOMES)
    lines = [
        f"Paired comparison: {comparison.campaign_a!r} (A) vs "
        f"{comparison.campaign_b!r} (B), {comparison.total} paired experiments",
        header,
        "-" * len(header),
    ]
    for outcome_a in OUTCOMES:
        row = f"{outcome_a:<{width}}"
        for outcome_b in OUTCOMES:
            row += f"{transitions.get((outcome_a, outcome_b), 0):>{width}}"
        lines.append(row)
    lines.append("")
    lines.append(
        f"outcomes changed by variant B: {len(comparison.changed())} "
        f"({len(comparison.changed()) / comparison.total:.0%}); "
        f"net escaped-errors removed: {comparison.improvement()}"
    )
    return "\n".join(lines)
