"""Fault-sensitivity maps: which locations and bits matter.

A staple of injection studies on processors: effectiveness is not
uniform across a register's bits (low bits of a loop counter derail
control flow; high bits of small data values are dead weight) or across
locations.  This module aggregates a campaign into per-element and
per-bit sensitivity tables and renders them as text heat maps.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..core.errors import AnalysisError
from ..core.locations import Location
from ..db import GoofiDatabase
from .classify import classify_campaign

#: Heat-map glyphs from cold (never effective) to hot (always).
_GLYPHS = " .:-=+*#%@"


@dataclass(slots=True)
class BitSensitivity:
    """Per-bit effectiveness counts for one location element."""

    element: str
    width: int
    injected: list[int] = field(default_factory=list)
    effective: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.injected:
            self.injected = [0] * self.width
            self.effective = [0] * self.width

    def record(self, bit: int, was_effective: bool) -> None:
        if not 0 <= bit < self.width:
            raise AnalysisError(f"bit {bit} out of range for {self.element}")
        self.injected[bit] += 1
        self.effective[bit] += was_effective

    def rate(self, bit: int) -> float | None:
        if self.injected[bit] == 0:
            return None
        return self.effective[bit] / self.injected[bit]

    @property
    def total_injected(self) -> int:
        return sum(self.injected)

    @property
    def total_effective(self) -> int:
        return sum(self.effective)

    def heat_row(self) -> str:
        """One character per bit, MSB first; '·' marks never-injected."""
        cells = []
        for bit in reversed(range(self.width)):
            rate = self.rate(bit)
            if rate is None:
                cells.append("·")
            else:
                cells.append(_GLYPHS[min(len(_GLYPHS) - 1, int(rate * (len(_GLYPHS) - 1) + 0.5))])
        return "".join(cells)


def bit_sensitivity(db: GoofiDatabase, campaign_name: str) -> dict[str, BitSensitivity]:
    """Per-element, per-bit sensitivity over a campaign's first faults."""
    verdicts = {
        c.experiment_name: c.effective
        for c in classify_campaign(db, campaign_name).classifications
    }
    table: dict[str, BitSensitivity] = {}
    widths: dict[str, int] = defaultdict(int)
    samples: list[tuple[str, int, bool]] = []
    for record in db.iter_experiments(campaign_name):
        if record.experiment_data.get("technique") == "reference":
            continue
        was_effective = verdicts.get(record.experiment_name)
        if was_effective is None:
            continue
        faults = record.experiment_data.get("faults", [])
        if not faults:
            continue
        location = Location.from_dict(faults[0]["location"])
        key = location.element_key
        widths[key] = max(widths[key], location.bit + 1)
        samples.append((key, location.bit, was_effective))
    for key, bit, was_effective in samples:
        entry = table.get(key)
        if entry is None:
            # Round the observed width up to a natural register size.
            width = widths[key]
            for natural in (1, 4, 8, 16, 32):
                if width <= natural:
                    width = natural
                    break
            entry = table[key] = BitSensitivity(element=key, width=width)
        entry.record(bit, was_effective)
    if not table:
        raise AnalysisError(f"campaign {campaign_name!r} has no injected faults")
    return table


def format_sensitivity_map(table: dict[str, BitSensitivity], min_injected: int = 1) -> str:
    """Text heat map: one row per element, one column per bit (MSB
    left).  Glyph scale: ``' '`` 0% effective … ``'@'`` 100%."""
    rows = [
        f"{'element':<28}{'n':>6}{'eff':>6}  bit map (MSB..LSB; scale ' {_GLYPHS[1:]}' = 0..100%)",
        "-" * 100,
    ]
    for key in sorted(table):
        entry = table[key]
        if entry.total_injected < min_injected:
            continue
        rows.append(
            f"{key:<28}{entry.total_injected:>6}{entry.total_effective:>6}  "
            f"|{entry.heat_row()}|"
        )
    return "\n".join(rows)


def band_rates(
    table: dict[str, BitSensitivity], split: int = 16
) -> tuple[float, float]:
    """(low-band, high-band) pooled effectiveness across all 32-bit
    elements — the classic 'which half of the word is live' summary."""
    low_injected = low_effective = high_injected = high_effective = 0
    for entry in table.values():
        if entry.width < split * 2:
            continue
        for bit in range(entry.width):
            if bit < split:
                low_injected += entry.injected[bit]
                low_effective += entry.effective[bit]
            else:
                high_injected += entry.injected[bit]
                high_effective += entry.effective[bit]
    if low_injected == 0 or high_injected == 0:
        raise AnalysisError("not enough 32-bit samples for a band split")
    return low_effective / low_injected, high_effective / high_injected
