"""Aggregate propagation-probe summaries — the ``goofi analyze
--propagation`` surface.

Works from the per-experiment payloads a probed run stores in the
``PropagationProbe`` table (:mod:`repro.core.probes`): an EDM coverage
matrix (injected location class × detecting mechanism), dormancy and
infection-curve percentiles, and the share of experiments whose faults
ever became visible in the probed scan chains.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import AnalysisError
from ..db import GoofiDatabase


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile on a sorted copy (no numpy dependency —
    the sample sizes here are campaign sizes, not vectors)."""
    if not values:
        raise AnalysisError("percentile of an empty sample")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def load_probe_payloads(db: GoofiDatabase, campaign_name: str) -> list[dict]:
    """All stored probe summaries for a campaign, in storage order."""
    payloads = [record.probe for record in db.iter_probes(campaign_name)]
    if not payloads:
        raise AnalysisError(
            f"campaign {campaign_name!r} has no propagation probes — "
            "run it with probes on (goofi run --probes)"
        )
    return payloads


#: Matrix column for experiments no EDM detected.
NO_DETECTION = "none"


@dataclass(frozen=True, slots=True)
class EdmCoverage:
    """The EDM coverage matrix: for each injected location class, how
    many experiments ended in each detecting mechanism (or none).

    ``counts[location_class][mechanism]`` counts experiments — an
    experiment injecting into two classes contributes one count to each
    of its classes, but only once per class."""

    classes: tuple[str, ...]
    mechanisms: tuple[str, ...]
    counts: dict[str, dict[str, int]]

    def row_total(self, location_class: str) -> int:
        return sum(self.counts[location_class].values())

    def coverage(self, location_class: str) -> float:
        """Detected share for one injected class: experiments where any
        EDM fired over all experiments injecting there."""
        total = self.row_total(location_class)
        if not total:
            return 0.0
        detected = total - self.counts[location_class].get(NO_DETECTION, 0)
        return detected / total


def _detecting_mechanism(payload: dict) -> str:
    detection = payload.get("detection")
    if detection:
        return str(detection.get("mechanism", "?"))
    return NO_DETECTION


def edm_coverage(payloads: list[dict]) -> EdmCoverage:
    """Fold probe summaries into the coverage matrix."""
    counts: dict[str, dict[str, int]] = {}
    mechanisms: set[str] = set()
    for payload in payloads:
        mechanism = _detecting_mechanism(payload)
        mechanisms.add(mechanism)
        for location_class in payload.get("injected_classes", []):
            row = counts.setdefault(location_class, {})
            row[mechanism] = row.get(mechanism, 0) + 1
    ordered_mechanisms = sorted(mechanisms - {NO_DETECTION})
    if NO_DETECTION in mechanisms:
        ordered_mechanisms.append(NO_DETECTION)
    return EdmCoverage(
        classes=tuple(sorted(counts)),
        mechanisms=tuple(ordered_mechanisms),
        counts=counts,
    )


def infection_percentiles(
    payloads: list[dict], fractions: tuple[float, ...] = (0.5, 0.9, 0.99)
) -> dict:
    """Headline propagation statistics across a campaign.

    Percentiles are over the experiments whose fault ever diverged from
    the golden run in the probed chains; ``diverged_share`` reports how
    many that was."""
    diverged = [p for p in payloads if p.get("first_divergence") is not None]
    result: dict = {
        "experiments": len(payloads),
        "diverged": len(diverged),
        "diverged_share": len(diverged) / len(payloads) if payloads else 0.0,
        "dormancy": None,
        "peak_infection": None,
        "final_infection": None,
    }
    if not diverged:
        return result
    for key in ("dormancy", "peak_infection", "final_infection"):
        values = [float(p[key]) for p in diverged if p.get(key) is not None]
        if values:
            result[key] = {
                f"p{int(fraction * 100)}": _percentile(values, fraction)
                for fraction in fractions
            }
    return result


def format_propagation_report(campaign_name: str, payloads: list[dict]) -> str:
    """Render the coverage matrix and percentile summary as text."""
    matrix = edm_coverage(payloads)
    stats = infection_percentiles(payloads)
    period = payloads[0].get("probe_period", "?") if payloads else "?"

    lines = [
        f"Propagation probes for campaign {campaign_name!r} "
        f"({stats['experiments']} experiments, probe period {period} cycles):",
        "",
        f"Fault visibility: {stats['diverged']} of {stats['experiments']} "
        f"experiments diverged from the golden run in the probed chains "
        f"({stats['diverged_share']:.1%}).",
    ]

    for key, label, unit in (
        ("dormancy", "Dormancy", "cycles"),
        ("peak_infection", "Peak infection", "elements"),
        ("final_infection", "Final infection", "elements"),
    ):
        percentiles = stats.get(key)
        if percentiles:
            rendered = ", ".join(
                f"{name}={value:g}" for name, value in percentiles.items()
            )
            lines.append(f"  {label:<16}: {rendered} ({unit})")

    if matrix.classes:
        label_width = max(12, max(len(c) for c in matrix.classes) + 2)
        column_width = max(9, max(len(m) for m in matrix.mechanisms) + 2)
        lines += ["", "EDM coverage matrix (experiments per injected class):"]
        header = " " * label_width + "".join(
            f"{mechanism:>{column_width}}" for mechanism in matrix.mechanisms
        )
        lines.append(header + f"{'coverage':>10}")
        for location_class in matrix.classes:
            row = matrix.counts[location_class]
            cells = "".join(
                f"{row.get(mechanism, 0):>{column_width}}"
                for mechanism in matrix.mechanisms
            )
            lines.append(
                f"{location_class:<{label_width}}{cells}"
                f"{matrix.coverage(location_class):>10.1%}"
            )
    return "\n".join(lines)


def propagation_report(db: GoofiDatabase, campaign_name: str) -> str:
    """Load a campaign's stored probe summaries and render the report."""
    return format_propagation_report(
        campaign_name, load_probe_payloads(db, campaign_name)
    )
