"""Analytical dependability models fed by measured coverage.

The paper's opening: "Fault injection can also be used to obtain
dependability measures such as the error coverage of a system.  The
coverage can then be used in an analytical model to calculate the
system's availability and reliability."  This module is that analytical
model, closing the loop from a campaign's measured coverage (with its
confidence interval) to reliability and availability predictions.

Model: faults arrive as a Poisson process with rate ``fault_rate`` (per
hour).  An arriving fault becomes an *effective error* with probability
``effectiveness``; an effective error is *detected* (and then recovered,
with probability ``recovery_success``) with the measured coverage ``c``;
an undetected or unrecovered effective error fails the system.  The
system therefore fails at the effective rate::

    lambda_fail = fault_rate * effectiveness * (1 - c * recovery_success)

which gives closed forms for reliability ``R(t) = exp(-lambda_fail t)``,
MTTF, and — with an exponential repair rate — steady-state availability.
Uncertainty propagates by evaluating the model at the coverage interval
endpoints: the model is monotone in ``c``, so the endpoints bound the
prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import AnalysisError
from .classify import CampaignClassification
from .measures import Proportion, detection_coverage, effectiveness


@dataclass(frozen=True, slots=True)
class Interval:
    """A point prediction with bounds from the coverage interval."""

    low: float
    estimate: float
    high: float

    def __str__(self) -> str:
        return f"{self.estimate:.6g} [{self.low:.6g}, {self.high:.6g}]"


@dataclass(frozen=True, slots=True)
class DependabilityModel:
    """The analytic model, parameterised by campaign measurements.

    ``fault_rate`` is the raw physical fault arrival rate (faults/hour,
    e.g. from radiation data for a space application like Thor's);
    ``repair_rate`` (repairs/hour) feeds the availability computation;
    ``recovery_success`` is the probability that a *detected* error is
    recovered before it does harm.
    """

    coverage: Proportion
    effectiveness: Proportion
    fault_rate: float
    repair_rate: float = 1.0
    recovery_success: float = 1.0

    def __post_init__(self) -> None:
        if self.fault_rate <= 0:
            raise AnalysisError("fault_rate must be positive")
        if self.repair_rate <= 0:
            raise AnalysisError("repair_rate must be positive")
        if not 0.0 <= self.recovery_success <= 1.0:
            raise AnalysisError("recovery_success must be a probability")
        if math.isnan(self.coverage.estimate):
            raise AnalysisError(
                "coverage is undefined (no effective errors in the campaign); "
                "the model needs a campaign with effective errors"
            )

    # ------------------------------------------------------------------
    def _failure_rate_at(self, coverage: float) -> float:
        escape_probability = 1.0 - coverage * self.recovery_success
        return self.fault_rate * self.effectiveness.estimate * escape_probability

    def failure_rate(self) -> Interval:
        """System failure rate (failures/hour).  Higher coverage →
        lower failure rate, so the coverage CI maps inverted."""
        return Interval(
            low=self._failure_rate_at(self.coverage.ci_high),
            estimate=self._failure_rate_at(self.coverage.estimate),
            high=self._failure_rate_at(self.coverage.ci_low),
        )

    def reliability(self, hours: float) -> Interval:
        """R(t): probability of surviving ``hours`` without failure."""
        if hours < 0:
            raise AnalysisError("mission time must be non-negative")
        rate = self.failure_rate()
        return Interval(
            low=math.exp(-rate.high * hours),
            estimate=math.exp(-rate.estimate * hours),
            high=math.exp(-rate.low * hours),
        )

    def mttf_hours(self) -> Interval:
        """Mean time to failure."""
        rate = self.failure_rate()
        return Interval(
            low=_safe_inverse(rate.high),
            estimate=_safe_inverse(rate.estimate),
            high=_safe_inverse(rate.low),
        )

    def availability(self) -> Interval:
        """Steady-state availability with exponential repair."""
        rate = self.failure_rate()

        def at(failure_rate: float) -> float:
            return self.repair_rate / (self.repair_rate + failure_rate)

        return Interval(low=at(rate.high), estimate=at(rate.estimate), high=at(rate.low))


def _safe_inverse(rate: float) -> float:
    return math.inf if rate == 0 else 1.0 / rate


def model_from_campaign(
    classification: CampaignClassification,
    fault_rate: float,
    repair_rate: float = 1.0,
    recovery_success: float = 1.0,
) -> DependabilityModel:
    """Build the model straight from a classified campaign."""
    return DependabilityModel(
        coverage=detection_coverage(classification),
        effectiveness=effectiveness(classification),
        fault_rate=fault_rate,
        repair_rate=repair_rate,
        recovery_success=recovery_success,
    )


def format_dependability_report(
    model: DependabilityModel, mission_hours: float
) -> str:
    """Plain-text prediction table."""
    lines = [
        "Analytical dependability prediction "
        f"(fault rate {model.fault_rate:g}/h, repair rate {model.repair_rate:g}/h, "
        f"recovery success {model.recovery_success:.0%}):",
        f"  measured coverage        : {model.coverage}",
        f"  measured effectiveness   : {model.effectiveness}",
        f"  system failure rate (/h) : {model.failure_rate()}",
        f"  MTTF (hours)             : {model.mttf_hours()}",
        f"  R({mission_hours:g} h)              : {model.reliability(mission_hours)}",
        f"  steady-state availability: {model.availability()}",
    ]
    return "\n".join(lines)
