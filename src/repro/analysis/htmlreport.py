"""Self-contained HTML campaign dashboards — the ``goofi report`` surface.

The paper's analysis menu ends at text reports and generated SQL; this
module renders one **single-file** HTML page per campaign so a CI run
can attach a browsable artifact.  Everything is inlined — styles in a
``<style>`` block, every chart a hand-built inline ``<svg>`` — so the
file opens from disk with no network access, no external assets, and
no JavaScript.  Only the standard library is used.

Two modes:

* :func:`render_campaign_report` — one campaign: overview, detection
  coverage per fault class, latency histogram, probe infection curves,
  phase-time breakdown, per-worker resource timelines, cross-run trend
  sparklines, and profiler hotspots.  Sections whose data source was
  not recorded (no probes, no telemetry, no history, …) are skipped
  and listed in a footer note instead of rendering empty charts.
* :func:`render_index` — all campaigns in one database as a summary
  table, linking to per-campaign report files by naming convention.
"""

from __future__ import annotations

from html import escape
from pathlib import Path

from ..db import GoofiDatabase
from .classify import classify_campaign
from .latency import detection_latencies
from .measures import detection_coverage
from .probes_report import edm_coverage, infection_percentiles, load_probe_payloads
from .telemetry_report import _fmt_bytes, _fmt_secs, phase_breakdown, resource_summary

#: Section ids in render order — also the anchor targets of the nav bar.
SECTION_IDS = (
    "overview",
    "coverage",
    "latency",
    "infection",
    "phases",
    "resources",
    "trends",
    "profile",
)

#: Colour cycle for multi-series charts (colour-blind friendly-ish).
_PALETTE = (
    "#2563eb", "#dc2626", "#059669", "#d97706",
    "#7c3aed", "#0891b2", "#be185d", "#4d7c0f",
)

#: Cap on overlaid probe infection curves — past this the plot is ink.
_MAX_CURVES = 40

#: Hotspot rows shown in the profile section.
_PROFILE_ROWS = 15

_STYLE = """
  body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
         margin: 0; background: #f3f4f6; color: #111827; }
  header { background: #111827; color: #f9fafb; padding: 18px 28px; }
  header h1 { margin: 0; font-size: 20px; }
  header .sub { color: #9ca3af; font-size: 13px; margin-top: 4px; }
  nav { background: #1f2937; padding: 8px 28px; }
  nav a { color: #d1d5db; text-decoration: none; margin-right: 16px;
          font-size: 13px; }
  main { max-width: 980px; margin: 0 auto; padding: 20px; }
  section { background: #ffffff; border-radius: 8px; padding: 18px 22px;
            margin-bottom: 18px; box-shadow: 0 1px 2px rgba(0,0,0,.08); }
  section h2 { margin-top: 0; font-size: 16px; }
  table { border-collapse: collapse; font-size: 13px; margin: 8px 0; }
  th, td { text-align: left; padding: 4px 14px 4px 0; }
  th { color: #6b7280; font-weight: 600; border-bottom: 1px solid #e5e7eb; }
  td.num, th.num { text-align: right; }
  .note { color: #6b7280; font-size: 12px; }
  footer { color: #6b7280; font-size: 12px; padding: 0 28px 24px;
           max-width: 980px; margin: 0 auto; }
  svg text { font-family: inherit; }
"""


# ----------------------------------------------------------------------
# Inline-SVG primitives
# ----------------------------------------------------------------------
def _svg_bars(rows: list[tuple[str, float, str]], width: int = 640) -> str:
    """Horizontal bar chart: ``(label, value, value_text)`` rows."""
    if not rows:
        return ""
    label_w, bar_h, gap = 200, 20, 6
    peak = max(value for _, value, _ in rows) or 1.0
    plot_w = width - label_w - 80
    height = len(rows) * (bar_h + gap)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
    ]
    for index, (label, value, text) in enumerate(rows):
        y = index * (bar_h + gap)
        w = max(1.0, plot_w * value / peak) if value > 0 else 0.0
        colour = _PALETTE[index % len(_PALETTE)]
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h - 6}" '
            f'text-anchor="end" font-size="12">{escape(label)}</text>'
        )
        parts.append(
            f'<rect x="{label_w}" y="{y}" width="{w:.1f}" '
            f'height="{bar_h}" fill="{colour}" rx="2"/>'
        )
        parts.append(
            f'<text x="{label_w + w + 6:.1f}" y="{y + bar_h - 6}" '
            f'font-size="12" fill="#374151">{escape(text)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _svg_histogram(
    bins: list[tuple[float, float, int]], width: int = 640, height: int = 180
) -> str:
    """Vertical histogram over ``(start, end, count)`` bins."""
    if not bins:
        return ""
    pad_left, pad_bottom = 10, 34
    peak = max(count for _, _, count in bins) or 1
    plot_h = height - pad_bottom
    bar_w = (width - pad_left) / len(bins)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
    ]
    for index, (start, end, count) in enumerate(bins):
        x = pad_left + index * bar_w
        h = plot_h * count / peak
        parts.append(
            f'<rect x="{x + 1:.1f}" y="{plot_h - h:.1f}" '
            f'width="{bar_w - 2:.1f}" height="{h:.1f}" '
            f'fill="{_PALETTE[0]}" rx="2"/>'
        )
        if count:
            parts.append(
                f'<text x="{x + bar_w / 2:.1f}" y="{plot_h - h - 4:.1f}" '
                f'text-anchor="middle" font-size="11" '
                f'fill="#374151">{count}</text>'
            )
        parts.append(
            f'<text x="{x + bar_w / 2:.1f}" y="{height - 18}" '
            f'text-anchor="middle" font-size="10" fill="#6b7280">'
            f"{start:,.0f}–{end:,.0f}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _svg_lines(
    series: list[tuple[str, list[tuple[float, float]]]],
    width: int = 640,
    height: int = 220,
    x_label: str = "",
    y_label: str = "",
    legend: bool = True,
) -> str:
    """Multi-series line chart.  Each series is ``(label, points)``
    with points as ``(x, y)``; points with ``None`` values must be
    filtered by the caller."""
    populated = [(label, pts) for label, pts in series if pts]
    if not populated:
        return ""
    xs = [x for _, pts in populated for x, _ in pts]
    ys = [y for _, pts in populated for _, y in pts]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    pad_left, pad_bottom, pad_top = 10, 36, 10
    plot_w, plot_h = width - pad_left - 10, height - pad_bottom - pad_top

    def point(x: float, y: float) -> str:
        px = pad_left + plot_w * (x - x_min) / x_span
        py = pad_top + plot_h * (1.0 - (y - y_min) / y_span)
        return f"{px:.1f},{py:.1f}"

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">',
        f'<rect x="{pad_left}" y="{pad_top}" width="{plot_w}" '
        f'height="{plot_h}" fill="#f9fafb" stroke="#e5e7eb"/>',
    ]
    for index, (label, pts) in enumerate(populated):
        colour = _PALETTE[index % len(_PALETTE)]
        coords = " ".join(point(x, y) for x, y in pts)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{colour}" '
            f'stroke-width="1.5"/>'
        )
        if legend and len(populated) <= len(_PALETTE):
            lx = pad_left + 8 + index * 120
            parts.append(
                f'<rect x="{lx}" y="{height - 14}" width="10" height="10" '
                f'fill="{colour}"/>'
                f'<text x="{lx + 14}" y="{height - 5}" font-size="11" '
                f'fill="#374151">{escape(label)}</text>'
            )
    axis = []
    if x_label:
        axis.append(f"{x_label}: {x_min:,.2f}–{x_max:,.2f}")
    if y_label:
        axis.append(f"{y_label}: {y_min:,.2f}–{y_max:,.2f}")
    if axis:
        parts.append(
            f'<text x="{width - 10}" y="{pad_top + 12}" text-anchor="end" '
            f'font-size="11" fill="#6b7280">{escape(" | ".join(axis))}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _svg_sparkline(
    values: list[float], width: int = 140, height: int = 30
) -> str:
    """Tiny inline trend line (no axes), oldest value first."""
    points = [v for v in values if v is not None]
    if len(points) < 2:
        return '<span class="note">n/a</span>'
    lo, hi = min(points), max(points)
    span = (hi - lo) or 1.0
    step = (width - 4) / (len(points) - 1)
    coords = " ".join(
        f"{2 + i * step:.1f},{2 + (height - 4) * (1 - (v - lo) / span):.1f}"
        for i, v in enumerate(points)
    )
    last_x = 2 + (len(points) - 1) * step
    last_y = 2 + (height - 4) * (1 - (points[-1] - lo) / span)
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
        f'<polyline points="{coords}" fill="none" stroke="{_PALETTE[0]}" '
        f'stroke-width="1.5"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5" '
        f'fill="{_PALETTE[1]}"/></svg>'
    )


def _table(headers: list[str], rows: list[list[str]],
           numeric: set[int] = frozenset()) -> str:
    head = "".join(
        f'<th{" class=" + chr(34) + "num" + chr(34) if i in numeric else ""}>'
        f"{escape(h)}</th>"
        for i, h in enumerate(headers)
    )
    body = "".join(
        "<tr>" + "".join(
            f'<td{" class=" + chr(34) + "num" + chr(34) if i in numeric else ""}>'
            f"{cell}</td>"
            for i, cell in enumerate(row)
        ) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


# ----------------------------------------------------------------------
# Sections (each returns inner HTML, or raises to be skipped)
# ----------------------------------------------------------------------
def _section_overview(db: GoofiDatabase, name: str) -> str:
    record = db.load_campaign(name)
    config = record.config
    classification = classify_campaign(db, name)
    coverage = detection_coverage(classification)
    fault_model = config.get("fault_model", {})
    rows = [
        ["workload", escape(str(config.get("workload", "?")))],
        ["technique", escape(str(config.get("technique", "?")))],
        ["fault model", escape(str(fault_model.get("name", "?")))],
        ["locations", escape(", ".join(config.get("location_patterns", [])))],
        ["experiments logged", f"{db.count_experiments(name):,}"],
        ["status", escape(record.status)],
        ["seed", escape(str(config.get("seed", "?")))],
    ]
    estimate = coverage.estimate
    coverage_text = (
        f"{estimate:.1%} (95% CI {coverage.ci_low:.1%}–"
        f"{coverage.ci_high:.1%}, {coverage.trials} effective faults)"
        if coverage.trials
        else "no effective faults"
    )
    rows.append(["detection coverage", escape(coverage_text)])
    return _table(["property", "value"], rows)


def _section_coverage(db: GoofiDatabase, name: str) -> str:
    classification = classify_campaign(db, name)
    if not classification.total:
        raise ValueError("no classified experiments")
    parts = ["<h3>Outcomes</h3>"]
    parts.append(_svg_bars([
        (category, float(count), f"{count} ({count / classification.total:.1%})")
        for category, count in (
            ("detected", classification.detected),
            ("escaped", classification.escaped),
            ("latent", classification.latent),
            ("overwritten", classification.overwritten),
        )
    ]))
    mechanisms = classification.by_mechanism()
    if mechanisms:
        parts.append("<h3>Detections per mechanism</h3>")
        parts.append(_svg_bars([
            (mechanism, float(count), str(count))
            for mechanism, count in sorted(
                mechanisms.items(), key=lambda item: -item[1]
            )
        ]))
    try:
        matrix = edm_coverage(load_probe_payloads(db, name))
    except Exception:
        matrix = None
    if matrix is not None and matrix.classes:
        parts.append("<h3>Coverage per injected fault class (probes)</h3>")
        parts.append(_svg_bars([
            (
                location_class,
                matrix.coverage(location_class),
                f"{matrix.coverage(location_class):.1%} "
                f"of {matrix.row_total(location_class)}",
            )
            for location_class in matrix.classes
        ]))
    return "".join(parts)


def _section_latency(db: GoofiDatabase, name: str) -> str:
    stats = detection_latencies(db, name)
    if not stats.count:
        raise ValueError("no detection latencies")
    rows = [[
        f"{stats.count}",
        f"{stats.mean:,.0f}",
        f"{stats.median:,.0f}",
        f"{stats.percentile(90):,.0f}",
        f"{stats.percentile(95):,.0f}",
        f"{stats.percentile(99):,.0f}",
        f"{stats.maximum:,.0f}",
    ]]
    table = _table(
        ["samples", "mean", "p50", "p90", "p95", "p99", "max"],
        rows, numeric=set(range(7)),
    )
    note = (
        f'<p class="note">{stats.skipped} detected experiment(s) carried '
        "no detection cycle and are excluded.</p>" if stats.skipped else ""
    )
    return (
        table
        + _svg_histogram(stats.histogram(bins=10))
        + '<p class="note">Detection latency in cycles from injection '
        "to the first detecting mechanism.</p>" + note
    )


def _section_infection(db: GoofiDatabase, name: str) -> str:
    payloads = load_probe_payloads(db, name)
    percentiles = infection_percentiles(payloads)
    curves = []
    for payload in payloads:
        curve = payload.get("infection_curve") or []
        points = [(float(cycle), float(count)) for cycle, count in curve]
        if points:
            curves.append((payload.get("experiment", ""), points))
        if len(curves) >= _MAX_CURVES:
            break
    chart = _svg_lines(
        curves, x_label="cycle", y_label="infected elements", legend=False
    )
    summary = _table(
        ["experiments probed", "diverged", "diverged share"],
        [[
            f"{percentiles['experiments']}",
            f"{percentiles['diverged']}",
            f"{percentiles['diverged_share']:.1%}",
        ]],
        numeric={0, 1, 2},
    )
    capped = (
        f'<p class="note">showing the first {_MAX_CURVES} of '
        f"{len(payloads)} probed experiments</p>"
        if len(payloads) > _MAX_CURVES else ""
    )
    return (
        summary + chart + capped
        + '<p class="note">Each line is one experiment’s infected '
        "scan-element count over time (propagation probes).</p>"
    )


def _section_phases(db: GoofiDatabase, name: str) -> str:
    snapshot = db.load_campaign_telemetry(name)
    phases = phase_breakdown(snapshot)
    if not phases:
        raise ValueError("no phase timers")
    total = sum(seconds for _, seconds, _ in phases) or 1.0
    chart = _svg_bars([
        (phase, seconds, f"{_fmt_secs(seconds)} ({seconds / total:.1%})")
        for phase, seconds, _ in phases
    ])
    table = _table(
        ["phase", "total", "calls", "mean"],
        [
            [
                escape(phase),
                _fmt_secs(seconds),
                f"{count:,}",
                _fmt_secs(seconds / count if count else 0.0),
            ]
            for phase, seconds, count in phases
        ],
        numeric={1, 2, 3},
    )
    return chart + table


def _section_resources(db: GoofiDatabase, name: str) -> str:
    samples = [record.sample for record in db.iter_resource_samples(name)]
    if not samples:
        raise ValueError("no resource samples")
    folded = resource_summary(samples)
    series = []
    for worker in sorted(folded["workers"]):
        timeline = [
            (float(uptime), rss / (1024 * 1024))
            for uptime, rss in folded["workers"][worker]["timeline"]
            if rss is not None
        ]
        label = "coordinator" if worker < 0 else f"worker {worker}"
        series.append((label, timeline))
    chart = _svg_lines(
        series, x_label="uptime (s)", y_label="RSS (MiB)"
    )
    table = _table(
        ["worker", "samples", "cpu user", "cpu system", "peak RSS",
         "peak shm", "source"],
        [
            [
                escape("coordinator" if worker < 0 else str(worker)),
                f"{entry['samples']:,}",
                _fmt_secs(entry["cpu_user_seconds"]),
                _fmt_secs(entry["cpu_system_seconds"]),
                _fmt_bytes(entry["peak_rss_bytes"]),
                _fmt_bytes(entry["peak_shm_bytes"]),
                escape(entry["source"] or "unavailable"),
            ]
            for worker, entry in sorted(folded["workers"].items())
        ],
        numeric={1, 2, 3, 4, 5},
    )
    return chart + table


def _section_trends(db: GoofiDatabase, name: str) -> str:
    records = list(db.iter_history(name))
    if not records:
        raise ValueError("no recorded history")
    records.reverse()  # chronological, oldest first
    summaries = [record.summary for record in records]

    def track(*path):
        values = []
        for summary in summaries:
            node = summary
            for key in path:
                node = node.get(key) if isinstance(node, dict) else None
                if node is None:
                    break
            values.append(node)
        return values

    metrics = [
        ("coverage estimate", track("coverage", "estimate"), "{:.1%}"),
        ("latency p95 (cycles)", track("latency", "p95"), "{:,.0f}"),
        ("experiments/s", track("throughput", "experiments_per_second"),
         "{:,.1f}"),
    ]
    rows = []
    for label, values, fmt in metrics:
        latest = next(
            (v for v in reversed(values) if v is not None), None
        )
        rows.append([
            escape(label),
            _svg_sparkline(values),
            escape(fmt.format(latest)) if latest is not None else "n/a",
        ])
    return (
        _table(["metric", f"last {len(records)} runs", "latest"], rows,
               numeric={2})
        + '<p class="note">History recorded by '
        "<code>goofi gate --trend</code>.</p>"
    )


def _section_profile(db: GoofiDatabase, name: str) -> str:
    snapshot = db.load_campaign_telemetry(name)
    profile = snapshot.get("profile")
    if not profile or not profile.get("hotspots"):
        raise ValueError("no profile recorded")
    table = _table(
        ["function", "calls", "tottime", "cumtime"],
        [
            [
                escape(spot["function"]),
                f"{spot['calls']:,}",
                _fmt_secs(spot["tottime"]),
                _fmt_secs(spot["cumtime"]),
            ]
            for spot in profile["hotspots"][:_PROFILE_ROWS]
        ],
        numeric={1, 2, 3},
    )
    return (
        f'<p class="note">{profile["functions"]:,} functions profiled '
        f'across {profile["workers"]} worker(s), '
        f'{profile["total_calls"]:,} calls, '
        f'{_fmt_secs(profile["total_tottime"])} total; '
        f"top {_PROFILE_ROWS} by own time.</p>" + table
    )


# ----------------------------------------------------------------------
# Page assembly
# ----------------------------------------------------------------------
_SECTION_TITLES = {
    "overview": "Overview",
    "coverage": "Detection coverage",
    "latency": "Detection latency",
    "infection": "Infection curves",
    "phases": "Phase-time breakdown",
    "resources": "Worker resources",
    "trends": "Cross-run trends",
    "profile": "Profiler hotspots",
}

_SECTION_BUILDERS = {
    "overview": _section_overview,
    "coverage": _section_coverage,
    "latency": _section_latency,
    "infection": _section_infection,
    "phases": _section_phases,
    "resources": _section_resources,
    "trends": _section_trends,
    "profile": _section_profile,
}


def _page(title: str, subtitle: str, nav: list[str], body: str,
          footer: str) -> str:
    nav_html = "".join(
        f'<a href="#{section}">{escape(_SECTION_TITLES[section])}</a>'
        for section in nav
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{escape(title)}</title>\n"
        f"<style>{_STYLE}</style></head>\n"
        f"<body><header><h1>{escape(title)}</h1>"
        f'<div class="sub">{escape(subtitle)}</div></header>\n'
        + (f"<nav>{nav_html}</nav>\n" if nav_html else "")
        + f"<main>{body}</main>\n"
        f"<footer>{footer}</footer></body></html>\n"
    )


def render_campaign_report(db: GoofiDatabase, campaign_name: str) -> str:
    """Render one campaign's dashboard as a self-contained HTML string.

    Sections are built independently; one whose data source is absent
    (campaign run without probes, telemetry, resources, …) is skipped
    and named in the footer, so the report never shows empty charts and
    never fails because an optional observability layer was off.
    """
    # Fail loudly only for a genuinely unknown campaign.
    db.load_campaign(campaign_name)
    rendered: list[tuple[str, str]] = []
    skipped: list[str] = []
    for section in SECTION_IDS:
        try:
            rendered.append((section, _SECTION_BUILDERS[section](db, campaign_name)))
        except Exception:
            skipped.append(section)
    body = "".join(
        f'<section id="{section}">'
        f"<h2>{escape(_SECTION_TITLES[section])}</h2>{inner}</section>"
        for section, inner in rendered
    )
    footer = "Generated by <code>goofi report</code>; single file, no external assets."
    if skipped:
        footer += (
            " Sections without recorded data were omitted: "
            + escape(", ".join(skipped)) + "."
        )
    return _page(
        f"GOOFI campaign report — {campaign_name}",
        "fault-injection campaign dashboard",
        [section for section, _ in rendered],
        body,
        footer,
    )


def render_index(db: GoofiDatabase) -> str:
    """Render the cross-campaign index: one summary row per stored
    campaign, linking to ``<campaign>.html`` next to the index file."""
    rows = []
    for name in db.list_campaigns():
        record = db.load_campaign(name)
        experiments = db.count_experiments(name)
        try:
            classification = classify_campaign(db, name)
            coverage = detection_coverage(classification)
            detected = (
                f"{coverage.estimate:.1%}" if coverage.trials else "n/a"
            )
        except Exception:
            detected = "n/a"
        history = [record.summary for record in db.iter_history(name)]
        history.reverse()
        trend = _svg_sparkline([
            (summary.get("coverage") or {}).get("estimate")
            for summary in history
        ])
        rows.append([
            f'<a href="{escape(name)}.html">{escape(name)}</a>',
            escape(record.status),
            f"{experiments:,}",
            detected,
            trend,
        ])
    if not rows:
        body = '<section id="overview"><h2>Overview</h2>' \
               "<p>No campaigns stored in this database.</p></section>"
    else:
        body = (
            '<section id="overview"><h2>Overview</h2>'
            + _table(
                ["campaign", "status", "experiments", "coverage",
                 "coverage trend"],
                rows, numeric={2, 3},
            )
            + '<p class="note">Per-campaign links expect reports '
            "generated as <code>&lt;campaign&gt;.html</code> next to "
            "this file.</p></section>"
        )
    return _page(
        "GOOFI campaign index",
        "all campaigns in this database",
        [],
        body,
        "Generated by <code>goofi report</code> (index mode).",
    )


def write_campaign_report(
    db: GoofiDatabase, campaign_name: str, out: str | Path
) -> Path:
    """Render and write one campaign's report; returns the path."""
    path = Path(out)
    path.write_text(render_campaign_report(db, campaign_name), encoding="utf-8")
    return path


def write_index(db: GoofiDatabase, out: str | Path) -> Path:
    """Render and write the cross-campaign index; returns the path."""
    path = Path(out)
    path.write_text(render_index(db), encoding="utf-8")
    return path
