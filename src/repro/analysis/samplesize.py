"""Statistical campaign planning: how many faults to inject.

"The user also selects ... the number of fault injection experiments to
perform" (§3.2) — and the right number is a statistics question: how
many samples until the coverage estimate is tight enough?  This module
provides the standard answers used in fault-injection methodology:

* :func:`required_experiments` — the sample size for a target
  confidence-interval half-width (Wald planning formula, with the
  conservative p=0.5 default when no prior estimate exists);
* :func:`achieved_half_width` — the precision a finished campaign
  actually reached;
* :class:`SequentialPlan` — a simple group-sequential recipe: run in
  chunks, stop as soon as the exact (Clopper–Pearson) interval is
  narrow enough, with a hard cap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats

from ..core.errors import AnalysisError, ConfigurationError
from .measures import Proportion, proportion


def _z(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), not {confidence}")
    return float(stats.norm.ppf(0.5 + confidence / 2.0))


def required_experiments(
    half_width: float,
    confidence: float = 0.95,
    expected_proportion: float = 0.5,
) -> int:
    """Experiments needed so the coverage CI half-width is at most
    ``half_width``.

    ``expected_proportion`` is a prior guess of the measured proportion;
    0.5 (the default) is the worst case and therefore always safe.
    """
    # half_width <= 0 would divide by zero (or flip the formula's sign);
    # it is a planning-input mistake, not a data problem, hence
    # ConfigurationError rather than AnalysisError.
    if not 0.0 < half_width < 0.5:
        raise ConfigurationError(
            f"half_width must be in (0, 0.5), not {half_width}"
        )
    if not 0.0 < expected_proportion < 1.0:
        raise AnalysisError("expected_proportion must be in (0, 1)")
    z = _z(confidence)
    n = (z / half_width) ** 2 * expected_proportion * (1.0 - expected_proportion)
    return math.ceil(n)


def achieved_half_width(estimate: Proportion) -> float:
    """Half-width of a measured proportion's interval."""
    if estimate.trials == 0:
        return 0.5
    return (estimate.ci_high - estimate.ci_low) / 2.0


@dataclass(slots=True)
class SequentialPlan:
    """Run-until-precise campaign sizing.

    ``next_chunk`` *reserves* a batch; the budget is charged when the
    runner reports back with :meth:`record_run` (an aborted or partial
    chunk must not eat cap budget it never used).  A reservation left
    unreconciled is assumed fully run and committed by the next
    ``next_chunk`` call, so the simple loop below still works unchanged.

    Usage::

        plan = SequentialPlan(target_half_width=0.05, chunk=100, cap=5000)
        while True:
            ran = run_chunk(plan.next_chunk())    # plan.chunk experiments
            plan.record_run(ran)                  # optional if ran fully
            p = proportion(detected, effective)
            if plan.should_stop(p):
                break
    """

    target_half_width: float
    chunk: int = 100
    cap: int = 10_000
    confidence: float = 0.95
    spent: int = 0
    pending: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_half_width < 0.5:
            raise AnalysisError("target_half_width must be in (0, 0.5)")
        if self.chunk <= 0 or self.cap <= 0:
            raise AnalysisError("chunk and cap must be positive")

    def next_chunk(self) -> int:
        """Reserve the next batch (0 when the cap is exhausted)."""
        # An unreconciled reservation counts as fully run.
        self.spent += self.pending
        remaining = self.cap - self.spent
        self.pending = max(0, min(self.chunk, remaining))
        return self.pending

    def record_run(self, experiments: int) -> None:
        """Reconcile the last reservation with what actually ran."""
        if experiments < 0 or experiments > self.pending:
            raise AnalysisError(
                f"record_run({experiments}) does not match the pending "
                f"reservation of {self.pending}"
            )
        self.spent += experiments
        self.pending = 0

    def should_stop(self, estimate: Proportion) -> bool:
        """Stop when precise enough — or when the cap is spent."""
        if self.spent + self.pending >= self.cap:
            return True
        if estimate.trials == 0:
            return False
        return achieved_half_width(estimate) <= self.target_half_width

    def projected_total(self, estimate: Proportion) -> int:
        """Rough projection of the total experiments needed, scaling the
        planning formula by the observed effective-error rate when the
        estimate comes from a subset (coverage is measured on effective
        errors only)."""
        if estimate.trials == 0 or math.isnan(estimate.estimate):
            p = 0.5
        else:
            p = min(max(estimate.estimate, 0.05), 0.95)
        return required_experiments(
            self.target_half_width, self.confidence, expected_proportion=p
        )
