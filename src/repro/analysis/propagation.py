"""Error-propagation analysis over detail-mode execution traces.

"The detail mode operation is used to produce an execution trace,
allowing the error propagation to be analysed in detail."  Given a
reference experiment and a faulty experiment both logged in detail mode
(state after each machine instruction), this module computes:

* the *first divergence*: the earliest logged step at which any observed
  location differs from the reference;
* the *infection timeline*: how many locations are erroneous at each
  step, and which locations become newly infected when;
* a *propagation graph* (networkx DiGraph): an edge ``a -> b`` records
  that location ``b`` became infected at a step where ``a`` was already
  infected — the observable skeleton of the error's spread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..core.errors import AnalysisError
from ..db import ExperimentRecord
from .classify import state_difference


@dataclass(frozen=True, slots=True)
class TimelinePoint:
    """Infection status at one logged step."""

    cycle: int
    infected: tuple[str, ...]
    newly_infected: tuple[str, ...]

    @property
    def infected_count(self) -> int:
        return len(self.infected)


@dataclass(slots=True)
class PropagationAnalysis:
    """The full propagation picture of one detail-mode experiment."""

    experiment_name: str
    timeline: list[TimelinePoint] = field(default_factory=list)
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    @property
    def first_divergence(self) -> int | None:
        """Cycle of the first logged difference, ``None`` if none."""
        for point in self.timeline:
            if point.infected:
                return point.cycle
        return None

    @property
    def peak_infection(self) -> int:
        return max((p.infected_count for p in self.timeline), default=0)

    @property
    def final_infection(self) -> int:
        return self.timeline[-1].infected_count if self.timeline else 0

    @property
    def ever_infected(self) -> set[str]:
        infected: set[str] = set()
        for point in self.timeline:
            infected.update(point.newly_infected)
        return infected

    def cleared(self) -> bool:
        """True when the error appeared and then vanished (overwritten
        during the run)."""
        return bool(self.ever_infected) and self.final_infection == 0


def _steps_of(record: ExperimentRecord) -> list[dict]:
    steps = record.state_vector.get("steps")
    if not steps:
        raise AnalysisError(
            f"experiment {record.experiment_name!r} has no detail-mode steps; "
            f"re-run it with rerun_experiment_detailed or logging_mode='detail'"
        )
    return steps


def analyze_propagation(
    reference: ExperimentRecord, experiment: ExperimentRecord
) -> PropagationAnalysis:
    """Compare two detail-mode step logs instruction for instruction.

    Steps are aligned by *cycle number*: each logged step is the state
    after the instruction executed at that cycle, and the cycle counter
    advances one per instruction in both runs.  A faulty experiment's
    log may start later than the reference's (injection happens mid-run
    and the states before it are the reference's by construction) and
    may end earlier (the fault crashed the run) — only the common cycles
    are compared.
    """
    ref_by_cycle = {s["cycle"]: s["state"] for s in _steps_of(reference)}
    exp_steps = _steps_of(experiment)
    analysis = PropagationAnalysis(experiment_name=experiment.experiment_name)
    previously_infected: set[str] = set()
    for exp_step in exp_steps:
        ref_state = ref_by_cycle.get(exp_step["cycle"])
        if ref_state is None:
            continue
        infected = set(state_difference(ref_state, exp_step["state"]))
        newly = infected - previously_infected
        analysis.timeline.append(
            TimelinePoint(
                cycle=exp_step["cycle"],
                infected=tuple(sorted(infected)),
                newly_infected=tuple(sorted(newly)),
            )
        )
        for new_location in newly:
            analysis.graph.add_node(new_location)
            for source in previously_infected & infected:
                analysis.graph.add_edge(source, new_location, cycle=exp_step["cycle"])
        previously_infected = infected
    return analysis


def propagation_summary(analysis: PropagationAnalysis) -> dict:
    """JSON-able digest used by reports and the detail-mode example."""
    return {
        "experiment": analysis.experiment_name,
        "first_divergence": analysis.first_divergence,
        "peak_infection": analysis.peak_infection,
        "final_infection": analysis.final_infection,
        "ever_infected": sorted(analysis.ever_infected),
        "cleared": analysis.cleared(),
        "graph_nodes": analysis.graph.number_of_nodes(),
        "graph_edges": analysis.graph.number_of_edges(),
    }
