"""Error classification — the analysis phase of §3.4.

The paper's taxonomy, reproduced exactly:

Effective errors
    * **Detected errors** — "errors that are detected by the error
      detection mechanisms of the target system.  These errors can be
      further classified into errors detected by each of the various
      mechanisms."
    * **Escaped errors** — "errors that escapes the error detection
      mechanisms causing failures such as incorrect results or
      timeliness violations."

Non-effective errors
    * **Latent errors** — a difference between the reference state and
      the experiment's final state is observable, but the run neither
      detected anything nor failed.
    * **Overwritten errors** — no difference at all between the
      reference final state and the experiment's final state.

Classification compares each ``LoggedSystemState`` row against the
campaign's reference row: outputs (the workload's result sequence)
decide wrong-result failures, the termination outcome decides detection
and timeliness, and the observed state vector decides latent vs
overwritten.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..core.errors import AnalysisError
from ..db import ExperimentRecord, GoofiDatabase, reference_name

CATEGORY_DETECTED = "detected"
CATEGORY_ESCAPED = "escaped"
CATEGORY_LATENT = "latent"
CATEGORY_OVERWRITTEN = "overwritten"

ESCAPE_WRONG_OUTPUT = "wrong_output"
ESCAPE_TIMELINESS = "timeliness"

EFFECTIVE_CATEGORIES = (CATEGORY_DETECTED, CATEGORY_ESCAPED)
NON_EFFECTIVE_CATEGORIES = (CATEGORY_LATENT, CATEGORY_OVERWRITTEN)


@dataclass(frozen=True, slots=True)
class Classification:
    """The analysis verdict for one experiment."""

    experiment_name: str
    category: str
    #: EDM name for detected errors (``icache_parity``, ...).
    mechanism: str | None = None
    #: ``wrong_output`` or ``timeliness`` for escaped errors.
    escape_kind: str | None = None
    #: State-vector keys that differ from the reference (latent errors;
    #: also filled for escaped wrong-output errors).
    differing_keys: tuple[str, ...] = ()

    @property
    def effective(self) -> bool:
        return self.category in EFFECTIVE_CATEGORIES


def _output_values(state: dict) -> list[tuple[int, int]]:
    """The (port, value) result sequence, ignoring emission cycles: a
    fault that shifts timing without corrupting any result value is not
    a wrong-output failure (timing is judged by the watchdog)."""
    return [(port, value) for _cycle, port, value in state.get("outputs", [])]


def _comparable_state(state: dict) -> dict[str, int]:
    """Flatten the observed state for latent-difference comparison.

    Cycle and iteration counters are excluded: a fault may legitimately
    lengthen execution without leaving any erroneous state behind.
    """
    flat: dict[str, int] = {}
    for key, value in state.get("scan", {}).items():
        flat[f"scan:{key}"] = value
    for address, value in state.get("memory", {}).items():
        flat[f"mem:{address}"] = value
    return flat


def state_difference(reference: dict, observed: dict) -> tuple[str, ...]:
    """Keys whose values differ between two captured states (symmetric:
    a key missing on either side counts as differing)."""
    ref_flat = _comparable_state(reference)
    obs_flat = _comparable_state(observed)
    keys = set(ref_flat) | set(obs_flat)
    return tuple(sorted(k for k in keys if ref_flat.get(k) != obs_flat.get(k)))


def classify_experiment(
    reference_state: dict, record: ExperimentRecord
) -> Classification:
    """Classify one experiment against the campaign's reference state.

    ``reference_state`` is the reference row's ``stateVector``.
    """
    state_vector = record.state_vector
    try:
        termination = state_vector["termination"]
        final = state_vector["final"]
        ref_final = reference_state["final"]
    except KeyError as exc:
        raise AnalysisError(
            f"experiment {record.experiment_name!r} has a malformed state vector "
            f"(missing {exc})"
        ) from exc

    outcome = termination["outcome"]
    if outcome == "error_detected":
        detection = termination.get("detection") or {}
        return Classification(
            experiment_name=record.experiment_name,
            category=CATEGORY_DETECTED,
            mechanism=detection.get("mechanism", "unknown"),
        )
    if outcome == "timeout":
        return Classification(
            experiment_name=record.experiment_name,
            category=CATEGORY_ESCAPED,
            escape_kind=ESCAPE_TIMELINESS,
        )
    if outcome != "workload_end":
        raise AnalysisError(
            f"experiment {record.experiment_name!r} has unknown outcome {outcome!r}"
        )

    differing = state_difference(ref_final, final)
    if _output_values(final) != _output_values(ref_final):
        return Classification(
            experiment_name=record.experiment_name,
            category=CATEGORY_ESCAPED,
            escape_kind=ESCAPE_WRONG_OUTPUT,
            differing_keys=differing,
        )
    if differing:
        return Classification(
            experiment_name=record.experiment_name,
            category=CATEGORY_LATENT,
            differing_keys=differing,
        )
    return Classification(
        experiment_name=record.experiment_name, category=CATEGORY_OVERWRITTEN
    )


@dataclass(slots=True)
class CampaignClassification:
    """Aggregated analysis of one campaign."""

    campaign_name: str
    classifications: list[Classification] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        return len(self.classifications)

    def count(self, category: str) -> int:
        return sum(1 for c in self.classifications if c.category == category)

    @property
    def detected(self) -> int:
        return self.count(CATEGORY_DETECTED)

    @property
    def escaped(self) -> int:
        return self.count(CATEGORY_ESCAPED)

    @property
    def latent(self) -> int:
        return self.count(CATEGORY_LATENT)

    @property
    def overwritten(self) -> int:
        return self.count(CATEGORY_OVERWRITTEN)

    @property
    def effective(self) -> int:
        return self.detected + self.escaped

    @property
    def non_effective(self) -> int:
        return self.latent + self.overwritten

    def by_mechanism(self) -> dict[str, int]:
        """Detected errors broken down per detection mechanism."""
        counts: Counter[str] = Counter()
        for c in self.classifications:
            if c.category == CATEGORY_DETECTED and c.mechanism:
                counts[c.mechanism] += 1
        return dict(counts)

    def by_escape_kind(self) -> dict[str, int]:
        counts: Counter[str] = Counter()
        for c in self.classifications:
            if c.category == CATEGORY_ESCAPED and c.escape_kind:
                counts[c.escape_kind] += 1
        return dict(counts)

    def summary(self) -> dict:
        return {
            "campaign": self.campaign_name,
            "total": self.total,
            "detected": self.detected,
            "escaped": self.escaped,
            "latent": self.latent,
            "overwritten": self.overwritten,
            "effective": self.effective,
            "non_effective": self.non_effective,
            "by_mechanism": self.by_mechanism(),
            "by_escape_kind": self.by_escape_kind(),
        }


def classify_campaign(db: GoofiDatabase, campaign_name: str) -> CampaignClassification:
    """Classify every experiment of a campaign against its reference."""
    reference = db.load_experiment(reference_name(campaign_name))
    result = CampaignClassification(campaign_name=campaign_name)
    for record in db.iter_experiments(campaign_name):
        if record.experiment_name == reference.experiment_name:
            continue
        if record.experiment_data.get("technique") == "reference":
            continue
        result.classifications.append(
            classify_experiment(reference.state_vector, record)
        )
    return result
