"""Declarative fault packs: one document, one complete campaign.

A *fault pack* is a single YAML/JSON document that declares everything a
dependability benchmark needs — the target and workload, the fault model
and injection strategy, the environment simulator (with optional
environment-boundary faults), how many experiments to sample (directly
or via a confidence-interval precision goal), and the *expected
dependability bounds* the measured results must satisfy (a coverage CI
floor, latency percentile ceilings, a critical-failure budget).

Packs make campaigns reviewable artefacts: checked into a repository,
diffed in code review, and replayed by ``goofi run --pack`` /
``goofi gate`` as a CI regression guard.  The schema is validated
eagerly — every malformed section raises :class:`ConfigurationError`
naming the offending payload — and ``FaultPack.from_dict(p.to_dict())``
round-trips exactly.

Example document::

    pack: control-dcmotor
    description: DC-motor control loop under register faults
    campaign:
      technique: scifi
      workload: control_unprotected
      locations: [internal:regs.*]
      fault_model: {model: transient_bitflip}
      seed: 42
    environment:
      name: dc_motor
      sensor_symbol: sensor
      actuator_symbol: actuator
      faults: {drop_probability: 0.02, seed: 7}
    sample_plan:
      half_width: 0.05
      confidence: 0.95
    bounds:
      min_coverage: 0.40
      coverage_basis: ci_low
      max_latency: {p95: 40000}
      max_critical_failures: 3
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .campaign import (
    LOGGING_DETAIL,
    LOGGING_NORMAL,
    MULTIPLICITY_ADJACENT,
    MULTIPLICITY_INDEPENDENT,
    _TIME_STRATEGIES,
    CampaignConfig,
)
from .errors import ConfigurationError
from .faultmodels import FaultModel, TransientBitFlip, model_from_dict
from .plugins import registered_environments, registered_techniques

#: Latency-bound keys accepted in ``bounds.max_latency`` and how each is
#: read off a :class:`repro.analysis.latency.LatencyStatistics`.
LATENCY_KEYS = ("p50", "p90", "p95", "p99", "mean", "max")


def _require_mapping(data, what: str) -> dict:
    if not isinstance(data, dict):
        raise ConfigurationError(f"{what} must be a mapping, got {data!r}")
    return data


def _reject_unknown(data: dict, known: set[str], what: str) -> None:
    unexpected = sorted(set(data) - known)
    if unexpected:
        raise ConfigurationError(
            f"{what} has unknown key(s) {', '.join(unexpected)} in payload "
            f"{data!r}; accepted: {', '.join(sorted(known))}"
        )


# ----------------------------------------------------------------------
# Sample plan
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SamplePlan:
    """How many experiments the pack's campaign runs.

    Either a direct ``experiments`` count, or a statistical goal: run
    however many experiments bound the coverage CI half-width to
    ``half_width`` at ``confidence`` (sized with
    :func:`repro.analysis.samplesize.required_experiments`, worst-case
    ``expected_proportion`` by default)."""

    experiments: int | None = None
    half_width: float | None = None
    confidence: float = 0.95
    expected_proportion: float = 0.5

    def __post_init__(self) -> None:
        if (self.experiments is None) == (self.half_width is None):
            raise ConfigurationError(
                "sample_plan needs exactly one of 'experiments' and "
                f"'half_width', got {self.to_dict()!r}"
            )
        if self.experiments is not None and self.experiments <= 0:
            raise ConfigurationError(
                f"sample_plan experiments must be positive, not {self.experiments}"
            )
        # Same bound required_experiments() enforces, checked here so a
        # bad pack fails at load time instead of mid-run at resolve().
        if self.half_width is not None and not 0.0 < self.half_width < 0.5:
            raise ConfigurationError(
                f"sample_plan half_width must be in (0, 0.5), not {self.half_width}"
            )

    def resolve(self) -> int:
        """The concrete experiment count."""
        if self.experiments is not None:
            return self.experiments
        from ..analysis.samplesize import required_experiments

        return required_experiments(
            half_width=self.half_width,
            confidence=self.confidence,
            expected_proportion=self.expected_proportion,
        )

    def to_dict(self) -> dict:
        data: dict = {}
        if self.experiments is not None:
            data["experiments"] = self.experiments
        if self.half_width is not None:
            data["half_width"] = self.half_width
            data["confidence"] = self.confidence
            data["expected_proportion"] = self.expected_proportion
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SamplePlan":
        data = _require_mapping(data, "sample_plan")
        _reject_unknown(
            data,
            {"experiments", "half_width", "confidence", "expected_proportion"},
            "sample_plan",
        )
        experiments = data.get("experiments")
        half_width = data.get("half_width")
        return cls(
            experiments=int(experiments) if experiments is not None else None,
            half_width=float(half_width) if half_width is not None else None,
            confidence=float(data.get("confidence", 0.95)),
            expected_proportion=float(data.get("expected_proportion", 0.5)),
        )


# ----------------------------------------------------------------------
# Dependability bounds
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class DependabilityBounds:
    """The pack's expected dependability envelope; ``goofi gate`` fails
    when any measured result falls outside it.

    * ``min_coverage`` — floor on error-detection coverage.  Compared
      against the Clopper–Pearson CI lower bound (``coverage_basis:
      ci_low``, the conservative default) or the point estimate
      (``estimate``).
    * ``max_latency`` — ceilings in cycles per detection-latency
      statistic (keys from :data:`LATENCY_KEYS`).
    * ``max_critical_failures`` — budget of experiments whose replayed
      actuator sequence violates the plant's safety envelope (or that
      timed out); needs the pack to declare an environment.
    """

    min_coverage: float | None = None
    coverage_basis: str = "ci_low"
    max_latency: dict = field(default_factory=dict)
    max_critical_failures: int | None = None

    def __post_init__(self) -> None:
        if self.min_coverage is not None and not 0.0 <= self.min_coverage <= 1.0:
            raise ConfigurationError(
                f"min_coverage must be in [0, 1], not {self.min_coverage!r}"
            )
        if self.coverage_basis not in ("ci_low", "estimate"):
            raise ConfigurationError(
                f"coverage_basis must be 'ci_low' or 'estimate', "
                f"not {self.coverage_basis!r}"
            )
        bad = sorted(set(self.max_latency) - set(LATENCY_KEYS))
        if bad:
            raise ConfigurationError(
                f"max_latency has unknown statistic(s) {', '.join(bad)}; "
                f"accepted: {', '.join(LATENCY_KEYS)}"
            )
        for key, ceiling in self.max_latency.items():
            if not isinstance(ceiling, (int, float)) or ceiling <= 0:
                raise ConfigurationError(
                    f"max_latency {key} ceiling must be a positive number, "
                    f"not {ceiling!r}"
                )
        if self.max_critical_failures is not None and self.max_critical_failures < 0:
            raise ConfigurationError(
                f"max_critical_failures must be >= 0, "
                f"not {self.max_critical_failures!r}"
            )

    @property
    def empty(self) -> bool:
        return (
            self.min_coverage is None
            and not self.max_latency
            and self.max_critical_failures is None
        )

    def to_dict(self) -> dict:
        data: dict = {}
        if self.min_coverage is not None:
            data["min_coverage"] = self.min_coverage
            data["coverage_basis"] = self.coverage_basis
        if self.max_latency:
            data["max_latency"] = dict(self.max_latency)
        if self.max_critical_failures is not None:
            data["max_critical_failures"] = self.max_critical_failures
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DependabilityBounds":
        data = _require_mapping(data, "bounds")
        _reject_unknown(
            data,
            {"min_coverage", "coverage_basis", "max_latency", "max_critical_failures"},
            "bounds",
        )
        min_coverage = data.get("min_coverage")
        max_critical = data.get("max_critical_failures")
        return cls(
            min_coverage=float(min_coverage) if min_coverage is not None else None,
            coverage_basis=data.get("coverage_basis", "ci_low"),
            max_latency=dict(
                _require_mapping(data.get("max_latency", {}), "bounds max_latency")
            ),
            max_critical_failures=(
                int(max_critical) if max_critical is not None else None
            ),
        )


# ----------------------------------------------------------------------
# The pack itself
# ----------------------------------------------------------------------
_CAMPAIGN_KEYS = {
    "technique",
    "workload",
    "locations",
    "fault_model",
    "flips_per_experiment",
    "multiplicity_model",
    "time_strategy",
    "injection_window",
    "clock_period",
    "logging",
    "detail_period",
    "seed",
    "preinjection",
    "max_cycles",
    "max_iterations",
}

_ENVIRONMENT_KEYS = {
    "name",
    "params",
    "sensor_symbol",
    "actuator_symbol",
    "faults",
}


@dataclass(frozen=True, slots=True)
class FaultPack:
    """One validated fault-pack document (see the module docstring)."""

    name: str
    campaign: dict
    description: str = ""
    environment: dict | None = None
    sample_plan: SamplePlan = field(
        default_factory=lambda: SamplePlan(experiments=100)
    )
    bounds: DependabilityBounds = field(default_factory=DependabilityBounds)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(f"pack name must be a non-empty string, not {self.name!r}")
        campaign = _require_mapping(self.campaign, "pack campaign section")
        _reject_unknown(campaign, _CAMPAIGN_KEYS, "pack campaign section")
        for required in ("technique", "workload", "locations"):
            if required not in campaign:
                raise ConfigurationError(
                    f"pack campaign section {campaign!r} is missing "
                    f"required key {required!r}"
                )
        technique = campaign["technique"]
        if technique not in registered_techniques():
            raise ConfigurationError(
                f"pack declares unknown technique {technique!r}; "
                f"registered: {', '.join(registered_techniques())}"
            )
        locations = campaign["locations"]
        if not isinstance(locations, (list, tuple)) or not locations or not all(
            isinstance(p, str) for p in locations
        ):
            raise ConfigurationError(
                f"pack locations must be a non-empty list of patterns, "
                f"not {locations!r}"
            )
        self.fault_model()  # validates the payload
        strategy = campaign.get("time_strategy", "uniform")
        if strategy not in _TIME_STRATEGIES:
            raise ConfigurationError(
                f"pack declares unknown time_strategy {strategy!r}; "
                f"accepted: {', '.join(_TIME_STRATEGIES)}"
            )
        logging_mode = campaign.get("logging", LOGGING_NORMAL)
        if logging_mode not in (LOGGING_NORMAL, LOGGING_DETAIL):
            raise ConfigurationError(
                f"pack declares unknown logging mode {logging_mode!r}"
            )
        multiplicity = campaign.get("multiplicity_model", MULTIPLICITY_INDEPENDENT)
        if multiplicity not in (MULTIPLICITY_INDEPENDENT, MULTIPLICITY_ADJACENT):
            raise ConfigurationError(
                f"pack declares unknown multiplicity_model {multiplicity!r}"
            )
        if self.environment is not None:
            environment = _require_mapping(self.environment, "pack environment section")
            _reject_unknown(environment, _ENVIRONMENT_KEYS, "pack environment section")
            env_name = environment.get("name")
            if env_name not in registered_environments():
                raise ConfigurationError(
                    f"pack declares unknown environment {env_name!r}; "
                    f"registered: {', '.join(registered_environments())}"
                )
            faults = environment.get("faults")
            if faults is not None:
                from ..workloads.envsim import EnvFaultConfig

                try:
                    EnvFaultConfig.from_dict(faults)
                except ValueError as exc:
                    raise ConfigurationError(str(exc)) from exc
        if self.bounds.max_critical_failures is not None and self.environment is None:
            raise ConfigurationError(
                "pack bounds declare max_critical_failures but the pack has "
                "no environment section to replay the plant from"
            )

    # ------------------------------------------------------------------
    def fault_model(self) -> FaultModel:
        payload = self.campaign.get("fault_model")
        if payload is None:
            return TransientBitFlip()
        return model_from_dict(payload)

    def to_dict(self) -> dict:
        data: dict = {
            "pack": self.name,
            "campaign": dict(self.campaign),
            "sample_plan": self.sample_plan.to_dict(),
        }
        if self.description:
            data["description"] = self.description
        if self.environment is not None:
            data["environment"] = dict(self.environment)
        bounds = self.bounds.to_dict()
        if bounds:
            data["bounds"] = bounds
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPack":
        data = _require_mapping(data, "fault pack document")
        _reject_unknown(
            data,
            {"pack", "description", "campaign", "environment", "sample_plan", "bounds"},
            "fault pack document",
        )
        if "pack" not in data:
            raise ConfigurationError(
                f"fault pack document {data!r} is missing the 'pack' name key"
            )
        if "campaign" not in data:
            raise ConfigurationError(
                f"fault pack {data.get('pack')!r} is missing its campaign section"
            )
        sample_plan = (
            SamplePlan.from_dict(data["sample_plan"])
            if "sample_plan" in data
            else SamplePlan(experiments=100)
        )
        bounds = (
            DependabilityBounds.from_dict(data["bounds"])
            if "bounds" in data
            else DependabilityBounds()
        )
        return cls(
            name=data["pack"],
            description=data.get("description", ""),
            campaign=dict(data["campaign"]),
            environment=(
                dict(data["environment"]) if data.get("environment") is not None else None
            ),
            sample_plan=sample_plan,
            bounds=bounds,
        )

    # ------------------------------------------------------------------
    def resolve_campaign(self, session, name: str | None = None) -> CampaignConfig:
        """Derive the concrete :class:`CampaignConfig` this pack
        describes, using ``session`` (a
        :class:`repro.session.GoofiSession`) to size the watchdog
        budget, choose the observation selection, and resolve
        environment symbol names to addresses."""
        campaign = self.campaign
        workload = campaign["workload"]
        max_cycles = campaign.get("max_cycles")
        max_iterations = campaign.get("max_iterations")
        if max_cycles is not None:
            from .framework import Termination

            termination = Termination(
                max_cycles=int(max_cycles),
                max_iterations=int(max_iterations) if max_iterations is not None else None,
            )
        else:
            termination = session.default_termination(
                workload, max_iterations=int(max_iterations or 200)
            )
        observation = session.default_observation(workload)
        environment = None
        if self.environment is not None:
            params = dict(self.environment.get("params") or {})
            sensor_symbol = self.environment.get("sensor_symbol")
            actuator_symbol = self.environment.get("actuator_symbol")
            if sensor_symbol or actuator_symbol:
                session.target.init_test_card()
                session.target.load_workload(workload)
                program = session.target.card.loaded_workload
                if sensor_symbol:
                    params["sensor_addr"] = program.symbol(sensor_symbol)
                if actuator_symbol:
                    params["actuator_addr"] = program.symbol(actuator_symbol)
            environment = {"name": self.environment["name"], "params": params}
            faults = self.environment.get("faults")
            if faults is not None:
                environment["faults"] = dict(faults)
        window = campaign.get("injection_window")
        return CampaignConfig(
            name=name or self.name,
            target=session.target.target_name,
            technique=campaign["technique"],
            workload=workload,
            location_patterns=tuple(campaign["locations"]),
            num_experiments=self.sample_plan.resolve(),
            termination=termination,
            observation=observation,
            fault_model=self.fault_model(),
            flips_per_experiment=int(campaign.get("flips_per_experiment", 1)),
            multiplicity_model=campaign.get(
                "multiplicity_model", MULTIPLICITY_INDEPENDENT
            ),
            time_strategy=campaign.get("time_strategy", "uniform"),
            injection_window=tuple(window) if window is not None else None,
            clock_period=int(campaign.get("clock_period", 100)),
            logging_mode=campaign.get("logging", LOGGING_NORMAL),
            detail_period=int(campaign.get("detail_period", 1)),
            seed=int(campaign.get("seed", 1)),
            use_preinjection_analysis=bool(campaign.get("preinjection", False)),
            environment=environment,
        )


def replay_function(environment: dict | None):
    """The plant replay function for an environment configuration.

    The analysis layer judges ``max_critical_failures`` by replaying
    logged actuator sequences through the plant model, but it never
    imports plant code itself — this resolver bridges the layers: pass
    its result as ``replay`` to :func:`repro.analysis.gates.evaluate_gate`.
    """
    from ..workloads.envsim import REPLAY_FUNCTIONS

    name = (environment or {}).get("name")
    replay = REPLAY_FUNCTIONS.get(name)
    if replay is None:
        raise ConfigurationError(
            f"no replay model for environment {name!r}; "
            f"known: {', '.join(sorted(REPLAY_FUNCTIONS))}"
        )
    return replay


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------
def loads_pack(text: str, source: str = "<string>") -> FaultPack:
    """Parse a pack from YAML or JSON text."""
    try:
        import yaml

        data = yaml.safe_load(text)
    except ImportError:  # pragma: no cover - PyYAML ships with the toolchain
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"cannot parse pack {source}: PyYAML unavailable and not JSON ({exc})"
            ) from None
    except Exception as exc:
        raise ConfigurationError(f"cannot parse pack {source}: {exc}") from None
    return FaultPack.from_dict(data)


def load_pack(path: str | Path) -> FaultPack:
    """Load and validate a pack document from a ``.yaml``/``.yml``/
    ``.json`` file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read pack {path}: {exc}") from None
    return loads_pack(text, source=str(path))


def save_pack(pack: FaultPack, path: str | Path) -> None:
    """Serialise a pack to YAML (or JSON for ``.json`` paths)."""
    path = Path(path)
    data = pack.to_dict()
    if path.suffix == ".json":
        path.write_text(json.dumps(data, indent=2) + "\n")
        return
    import yaml

    path.write_text(yaml.safe_dump(data, sort_keys=False))
