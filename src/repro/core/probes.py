"""Campaign-scale fault-effect observation: periodic propagation probes.

The paper's error-propagation analysis (§2.3) needs detail mode — a
period-1 single-step re-run, ~100x slower than the hot-loop engine — so
it is only ever applied to a handful of hand-picked experiments.  This
module observes *every* experiment in a campaign instead, at a coarse
but uniform resolution (the ZOFI/MRFI trade: cheap observation of all
runs beats precise observation of a few):

* During each experiment the run is sliced at fixed **probe cycles**
  (multiples of the probe period after the first injection).  The slice
  boundary folds into the target's fused fast loop exactly like a time
  breakpoint (:meth:`TargetSystemInterface.run_until_cycle`), so the
  fast path stays engaged between probes and — crucially — the full
  termination conditions stay armed across slices: probed runs are
  **bit-identical** to un-probed ones in every mode (serial, parallel,
  checkpointed, fast/reference).
* At each probe cycle the scan chains are dumped read-only
  (:meth:`TargetSystemInterface.probe_scan_chain`, reusing the
  precomputed shift plans — well under 100us per chain) and diffed
  element-wise against a **golden snapshot**: the fault-free chain
  image at that same cycle, captured *once per campaign* in a single
  extra fault-free pass and shared across experiments and workers.
* The diffs reduce to a compact per-experiment propagation summary —
  first-divergence cycle, dormancy, infection-count curve, infected
  location classes, and which EDM ultimately fired — persisted in the
  ``PropagationProbe`` table and aggregated by ``goofi analyze
  --propagation`` into an EDM coverage matrix and infection-curve
  percentiles.

Probe cycles start strictly *after* the experiment's first injection
cycle: before it the target state equals the golden run by construction
(zero information), and skipping the prefix keeps summaries invariant
under checkpoint restore (which jumps over exactly that prefix).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from .errors import ConfigurationError, TargetError
from .framework import TargetSystemInterface, Termination, TerminationInfo
from .locations import KIND_SCAN

#: Default probe period in cycles.  Chosen so that the median paired
#: overhead of a probed campaign stays well under 10% on the stock
#: workloads (~6-8% measured on ``bubble_sort``; asserted by
#: ``benchmarks/bench_probes.py``); a probe is a read-only chain dump,
#: so halving the period roughly doubles the cost.
DEFAULT_PROBE_PERIOD = 500

#: Chains probed by default: the internal state (registers, control,
#: caches / stacks).  The boundary chain only changes at port activity
#: and is cheap to add via ``ProbeConfig(chains=("internal", "boundary"))``.
DEFAULT_PROBE_CHAINS = ("internal",)


@dataclass(frozen=True, slots=True)
class ProbeConfig:
    """How a campaign is probed: snapshot period (cycles) and which
    scan chains are dumped at each probe."""

    period: int = DEFAULT_PROBE_PERIOD
    chains: tuple[str, ...] = DEFAULT_PROBE_CHAINS

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigurationError(
                f"probe period must be >= 1 cycle, got {self.period}"
            )
        if not self.chains:
            raise ConfigurationError("probe config needs at least one scan chain")

    def to_dict(self) -> dict:
        return {"period": self.period, "chains": list(self.chains)}

    @classmethod
    def from_dict(cls, data: dict) -> "ProbeConfig":
        return cls(
            period=int(data.get("period", DEFAULT_PROBE_PERIOD)),
            chains=tuple(data.get("chains", DEFAULT_PROBE_CHAINS)),
        )


def resolve_probes(value) -> ProbeConfig | None:
    """Normalise the ``run_campaign(probes=...)`` knob.

    ``None``/``False`` → off; ``True`` → default config; an ``int`` →
    that probe period; a dict → :meth:`ProbeConfig.from_dict`; a ready
    :class:`ProbeConfig` passes through."""
    if value is None or value is False:
        return None
    if value is True:
        return ProbeConfig()
    if isinstance(value, ProbeConfig):
        return value
    if isinstance(value, int):
        return ProbeConfig(period=value)
    if isinstance(value, dict):
        return ProbeConfig.from_dict(value)
    raise ConfigurationError(
        f"probes must be a bool, period int, dict, or ProbeConfig; got {value!r}"
    )


def _pack_chain(values) -> array | None:
    """Pack chain-element values into an ``array('Q')`` for one-shot
    buffer comparison, or ``None`` when a value exceeds 64 bits (the
    element-tuple slow path stays authoritative)."""
    try:
        return array("Q", values)
    except OverflowError:
        return None


@dataclass(slots=True)
class GoldenSnapshots:
    """Fault-free chain images at every probe cycle, captured once per
    campaign and shared (as plain picklable ints) across experiments and
    parallel workers.

    ``snapshots[cycle]`` holds one per-element value tuple per
    configured chain, in ``chains`` order; ``duration`` is the cycle at
    which the fault-free run ended (no probes beyond it).

    ``liveness`` optionally carries the per-element liveness summary of
    the same golden pass (:func:`repro.core.liveness.liveness_map`):
    dead written-before-read windows and never-read flags per register,
    first-access kinds per memory word."""

    period: int
    chains: tuple[str, ...]
    snapshots: dict[int, tuple[tuple[int, ...], ...]]
    duration: int
    liveness: dict | None = None
    #: Lazy per-(cycle, chain) ``array('Q')`` packings of ``snapshots``,
    #: built on first probe use (``None`` entries mark unpackable chains).
    _packed: dict = field(default_factory=dict, repr=False)
    #: Shared-memory attachment state (workers only): sorted cycles,
    #: read-only ``'Q'`` buffer views, and the unpackable-chain tuples
    #: shipped via metadata.  ``None`` on locally captured snapshots.
    _shared: dict | None = field(default=None, repr=False)

    def cycles(self) -> list[int]:
        if self._shared is not None:
            return self._shared["cycles"]
        return sorted(self.snapshots)

    # -- per-chain access (packed fast path + tuple slow path) ---------
    def packed_chain(self, cycle: int, index: int):
        """The golden ``array('Q')``/``'Q'``-memoryview buffer of chain
        ``index`` at ``cycle``, or ``None`` when that chain does not
        pack.  Probe readout compares a freshly packed target snapshot
        against this in one C-level buffer comparison."""
        if self._shared is not None:
            return self._shared["buffers"].get((cycle, index))
        key = (cycle, index)
        try:
            return self._packed[key]
        except KeyError:
            packed = self._packed[key] = _pack_chain(self.snapshots[cycle][index])
            return packed

    def chain_values(self, cycle: int, index: int) -> tuple[int, ...]:
        """The golden per-element value tuple of chain ``index`` at
        ``cycle`` — the walk path for chains whose packed buffers
        differ, and the whole path for unpackable chains."""
        shared = self._shared
        if shared is None:
            return self.snapshots[cycle][index]
        key = (cycle, index)
        values = shared["unpacked"].get(key)
        if values is not None:
            return values
        cached = shared["values"].get(key)
        if cached is None:
            # Materialise element tuples lazily: most experiments never
            # walk most chains, so the shared buffer stays the only copy.
            cached = shared["values"][key] = tuple(shared["buffers"][key])
        return cached

    # -- shared-memory round trip --------------------------------------
    def to_shared(self) -> tuple[dict, dict]:
        """Split into ``(meta, buffers)`` for one-time shared-memory
        publication: each packable chain image becomes one named bytes
        buffer (attached zero-copy by every worker), everything else —
        config, liveness, and any unpackable chains — rides in the
        picklable metadata."""
        meta = {
            "period": self.period,
            "chains": list(self.chains),
            "cycles": self.cycles(),
            "duration": self.duration,
            "liveness": self.liveness,
            "unpacked": [],
        }
        buffers: dict[str, bytes] = {}
        for cycle in self.cycles():
            for index, values in enumerate(self.snapshots[cycle]):
                packed = self.packed_chain(cycle, index)
                if packed is None:
                    meta["unpacked"].append([cycle, index, list(values)])
                else:
                    buffers[f"golden:{cycle}:{index}"] = packed.tobytes()
        return meta, buffers

    @classmethod
    def from_shared(cls, meta: dict, view) -> "GoldenSnapshots":
        """Attach to a coordinator's :meth:`to_shared` publication.
        ``view`` supplies named read-only buffers
        (:class:`repro.core.sharedstate.SharedStateView`); golden chain
        images are memoryviews into the shared segment — no
        deserialisation, no copies."""
        from .liveness import normalise_liveness_payload

        cycles = [int(cycle) for cycle in meta["cycles"]]
        unpacked = {
            (int(cycle), int(index)): tuple(int(v) for v in values)
            for cycle, index, values in meta["unpacked"]
        }
        buffers = {}
        for cycle in cycles:
            for index in range(len(meta["chains"])):
                if (cycle, index) in unpacked:
                    continue
                buffers[(cycle, index)] = view.buffer(
                    f"golden:{cycle}:{index}", typecode="Q"
                )
        golden = cls(
            period=int(meta["period"]),
            chains=tuple(meta["chains"]),
            snapshots={},
            duration=int(meta["duration"]),
            liveness=normalise_liveness_payload(meta.get("liveness")),
        )
        golden._shared = {
            "cycles": cycles,
            "buffers": buffers,
            "unpacked": unpacked,
            "values": {},
        }
        return golden

    def to_payload(self) -> dict:
        """A picklable/JSON-able form for shipping to parallel workers
        (JSON would stringify the int keys, so keep tuples explicit)."""
        return {
            "period": self.period,
            "chains": list(self.chains),
            "snapshots": [
                [cycle, [list(values) for values in chains]]
                for cycle, chains in sorted(self.snapshots.items())
            ],
            "duration": self.duration,
            "liveness": self.liveness,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "GoldenSnapshots":
        """Rebuild from :meth:`to_payload` output, including after a
        JSON round trip: integer-keyed mappings (probe cycles in the
        dict snapshot form, register/address keys in the liveness
        summary) come back as string keys and are normalised here."""
        from .liveness import normalise_liveness_payload

        raw = payload["snapshots"]
        if isinstance(raw, dict):
            # Mapping form {cycle: [chain values...]} — cycles arrive as
            # strings after JSON.
            items = [(cycle, chains) for cycle, chains in raw.items()]
        else:
            items = raw
        return cls(
            period=int(payload["period"]),
            chains=tuple(payload["chains"]),
            snapshots={
                int(cycle): tuple(
                    tuple(int(v) for v in values) for values in chains
                )
                for cycle, chains in items
            },
            duration=int(payload["duration"]),
            liveness=normalise_liveness_payload(payload.get("liveness")),
        )


def capture_golden_snapshots(
    target: TargetSystemInterface,
    prepare,
    termination: Termination,
    config: ProbeConfig,
) -> GoldenSnapshots:
    """One extra fault-free pass: run the workload, stopping at every
    probe cycle to dump the configured chains.

    ``prepare`` is a callable arming the target for a fresh fault-free
    run (the campaign loop passes its usual experiment preamble).  The
    capture ends when the fault-free run terminates — experiments never
    probe past the golden run's duration, because a diff against nothing
    means nothing."""
    if not target.supports_probes:
        raise TargetError(
            f"target {target.target_name!r} does not support propagation probes"
        )
    prepare()
    target.run_workload()
    snapshots: dict[int, tuple[int, ...]] = {}
    cycle = config.period
    while cycle < termination.max_cycles:
        info = target.run_until_cycle(cycle, termination)
        if info is not None:
            return GoldenSnapshots(
                period=config.period,
                chains=config.chains,
                snapshots=snapshots,
                duration=info.cycle,
            )
        snapshots[cycle] = tuple(
            target.probe_scan_chain(chain) for chain in config.chains
        )
        cycle += config.period
    info = target.wait_for_termination(termination)
    return GoldenSnapshots(
        period=config.period,
        chains=config.chains,
        snapshots=snapshots,
        duration=info.cycle,
    )


def location_class(element: str) -> str:
    """Coarse location class of a scan element: the name prefix before
    the first dot — ``regs``, ``ctrl``, ``icache``, ``dcache``,
    ``dstack``, ``rstack``, ``pins``, ..."""
    return element.split(".", 1)[0]


def element_layout(
    target: TargetSystemInterface, chains: tuple[str, ...]
) -> dict[str, tuple[str, ...]]:
    """Per chain: element names in snapshot order, so a probe snapshot
    diffs against the golden one positionally — the index of a
    mismatching value IS the infected element."""
    return {
        chain: tuple(target.probe_element_names(chain)) for chain in chains
    }


class ExperimentProbe:
    """Per-experiment probe driver: slices the experiment's execution
    segments at the pending probe cycles, diffs each snapshot against
    the golden image, and reduces everything to one summary payload.

    The campaign experiment bodies call :meth:`run_to_breakpoint` /
    :meth:`run_to_termination` instead of the bare target methods when a
    probe session is active; both preserve the exact stop semantics of
    the bare calls (same ``TerminationInfo``, same final cycle), so
    logged rows are unchanged."""

    __slots__ = ("session", "name", "index", "first_injection",
                 "_cycles", "_position", "samples")

    def __init__(
        self,
        session: "ProbeSession",
        name: str,
        index: int,
        first_injection: int,
    ) -> None:
        self.session = session
        self.name = name
        self.index = index
        self.first_injection = first_injection
        # Probe cycles strictly after the first injection: the prefix
        # equals the golden run by construction (and a checkpoint
        # restore may jump straight past it).
        self._cycles = [
            cycle for cycle in session.golden.cycles() if cycle > first_injection
        ]
        self._position = 0
        #: ``[(cycle, [infected element names])]`` per taken probe.
        self.samples: list[tuple[int, list[str]]] = []

    # -- segment drivers ----------------------------------------------
    def _next_cycle(self) -> int | None:
        if self._position < len(self._cycles):
            return self._cycles[self._position]
        return None

    def run_to_breakpoint(
        self, target: TargetSystemInterface, cycle: int
    ) -> TerminationInfo | None:
        """``wait_for_breakpoint`` with probe stops folded in.  Probes
        strictly before the breakpoint sample on the way; the final leg
        is the bare breakpoint wait (identical semantics — both bound
        the run by a stop cycle only)."""
        pending = self._next_cycle()
        while pending is not None and pending < cycle:
            info = target.wait_for_breakpoint(pending)
            if info is not None:
                return info
            self._sample(target, pending)
            pending = self._next_cycle()
        return target.wait_for_breakpoint(cycle)

    def run_to_termination(
        self, target: TargetSystemInterface, termination: Termination
    ) -> TerminationInfo:
        """``wait_for_termination`` with probe stops folded in, via
        :meth:`TargetSystemInterface.run_until_cycle` so the iteration
        limit keeps counting across probe stops."""
        pending = self._next_cycle()
        while pending is not None and pending < termination.max_cycles:
            info = target.run_until_cycle(pending, termination)
            if info is not None:
                return info
            self._sample(target, pending)
            pending = self._next_cycle()
        return target.wait_for_termination(termination)

    # -- sampling ------------------------------------------------------
    def _sample(self, target: TargetSystemInterface, cycle: int) -> None:
        self._position += 1
        session = self.session
        golden = session.golden
        infected: list[str] = []
        for index, chain in enumerate(session.config.chains):
            # Batched diff: compare packed 64-bit-per-element buffers in
            # one C-level operation and only walk the elements of chains
            # that differ.  Almost every probe of almost every chain is
            # clean, so the walk (and the golden tuple itself, in shared
            # mode) is never touched on the common path.
            packed_golden = golden.packed_chain(cycle, index)
            snapshot = None
            if packed_golden is not None:
                snapshot = target.probe_scan_chain_packed(chain)
                if snapshot is not None and snapshot == packed_golden:
                    continue
            golden_values = golden.chain_values(cycle, index)
            if snapshot is None:
                snapshot = target.probe_scan_chain(chain)
                if snapshot == golden_values:  # C-level tuple compare
                    continue
            names = session.layout[chain]
            infected.extend(
                name
                for name, value, golden_value in zip(
                    names, snapshot, golden_values
                )
                if value != golden_value
            )
        self.samples.append((cycle, infected))

    # -- reduction -----------------------------------------------------
    def finish(self, info: TerminationInfo, injected: list[dict]) -> dict:
        """Reduce the samples to the persisted summary payload and hand
        it to the session's pending queue."""
        first_divergence: int | None = None
        peak = 0
        infected_elements: set[str] = set()
        curve: list[list[int]] = []
        for cycle, elements in self.samples:
            count = len(elements)
            curve.append([cycle, count])
            if count:
                if first_divergence is None:
                    first_divergence = cycle
                peak = max(peak, count)
                infected_elements.update(elements)
        detection = info.detection if info.outcome == "error_detected" else None
        payload = {
            "experiment": self.name,
            "index": self.index,
            "probe_period": self.session.config.period,
            "first_injection_cycle": self.first_injection,
            "injected_classes": sorted(_injected_classes(injected)),
            "probes": len(self.samples),
            "first_divergence": first_divergence,
            "dormancy": (
                first_divergence - self.first_injection
                if first_divergence is not None
                else None
            ),
            "infection_curve": curve,
            "peak_infection": peak,
            "final_infection": curve[-1][1] if curve else 0,
            "infected_classes": sorted(
                {location_class(name) for name in infected_elements}
            ),
            "infected_elements": sorted(infected_elements),
            "outcome": info.outcome,
            "detection": detection,
            "detection_cycle": info.cycle if detection is not None else None,
            "end_cycle": info.cycle,
        }
        self.session.collect(payload)
        return payload


def _injected_classes(injected: list[dict]) -> set[str]:
    """Location classes of the faults an experiment planned — scan
    faults classify by element prefix, memory faults as ``memory``."""
    classes: set[str] = set()
    for entry in injected:
        location = entry.get("location", {})
        if location.get("kind") == KIND_SCAN:
            classes.add(location_class(location.get("element", "?")))
        else:
            classes.add("memory")
    return classes


class ProbeSession:
    """Campaign-scoped probe state: the config, the shared golden
    snapshots, the chain element layouts, and the pending summaries not
    yet flushed to the database."""

    __slots__ = ("config", "golden", "layout", "_pending")

    def __init__(
        self,
        config: ProbeConfig,
        golden: GoldenSnapshots,
        layout: dict[str, tuple[str, ...]],
    ) -> None:
        self.config = config
        self.golden = golden
        self.layout = layout
        self._pending: list[dict] = []

    @classmethod
    def create(
        cls,
        target: TargetSystemInterface,
        prepare,
        termination: Termination,
        config: ProbeConfig,
        golden: GoldenSnapshots | None = None,
    ) -> "ProbeSession":
        """Build a session, capturing the golden snapshots unless a
        precomputed set is supplied (parallel workers receive the
        coordinator's capture instead of redoing the pass)."""
        if golden is None:
            golden = capture_golden_snapshots(target, prepare, termination, config)
        return cls(config, golden, element_layout(target, config.chains))

    def observe(self, name: str, index: int, first_injection: int) -> ExperimentProbe:
        return ExperimentProbe(self, name, index, first_injection)

    # -- pending summaries --------------------------------------------
    def collect(self, payload: dict) -> None:
        self._pending.append(payload)

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    def drain(self) -> list[dict]:
        """Hand over (and forget) the summaries finished since the last
        drain — the campaign loop persists them alongside experiment
        batches; parallel workers ship them with each result."""
        pending, self._pending = self._pending, []
        return pending
