"""Parallel campaign execution: shard the plan across worker processes.

The paper's SCIFI campaigns run thousands of experiments serially
against one Thor board.  Our targets are deterministic pure-Python
simulators, so nothing prevents running experiments on all cores: the
coordinator generates the usual deterministic experiment plan, shards it
round-robin over N ``multiprocessing`` workers, and each worker rebuilds
its own target interface from the plugin registry
(:func:`repro.core.plugins.create_target`), recomputes the reference
trace locally, runs its shard of :class:`ExperimentSpec`\\ s, and streams
:class:`ExperimentRecord` payloads back over a queue.

Design rules:

* **Single writer** — only the coordinator process touches SQLite.
  Workers never open the database; results flow through the queue and
  the coordinator logs them with the existing 64-record batching.
* **Bit-identical results** — every experiment re-initialises the test
  card and derives its randomness from the per-experiment seed already
  in the plan, so the logged rows (ignoring ``createdAt`` and insertion
  order) are the same for any worker count, including the serial loop.
* **Abort drains** — an abort request stops workers at their next
  experiment boundary; the coordinator keeps consuming until every
  worker has drained, flushes pending records, and marks the campaign
  ``aborted``.  Worker failures likewise abort the campaign without
  losing already-streamed records.
"""

from __future__ import annotations

import logging
import multiprocessing
import queue as queue_module
import time
import traceback

from ..db import (
    ExperimentRecord,
    GoofiDatabase,
    ProbeRecord,
    ResourceSampleRecord,
    SpanRecord,
)
from . import sharedstate
from .campaign import CampaignConfig, ExperimentSpec, PlanGenerator
from .checkpoint import CheckpointCache, sort_plan_by_first_injection
from .errors import ConfigurationError, GoofiError
from .liveness import PrunePlan, build_prune_plan, liveness_map
from .probes import GoldenSnapshots, ProbeConfig, ProbeSession, capture_golden_snapshots
from .profiling import ProfileCollector, merge_profile_stats, profile_summary
from .progress import ProgressReporter
from .resources import COORDINATOR_WORKER, ResourceConfig, ResourceSampler
from .telemetry import MODE_OFF, Telemetry

logger = logging.getLogger(__name__)

#: Consecutive empty queue polls (of ``_POLL_SECONDS`` each) after a
#: worker process died before it is written off as crashed.
_DEAD_WORKER_GRACE_POLLS = 20
_POLL_SECONDS = 0.1


class WorkerFailure(GoofiError):
    """A campaign worker process raised or died; the campaign was
    aborted (already logged experiments are kept and resumable)."""


def _start_context():
    """``fork`` where available (cheap, inherits the plugin registries),
    ``spawn`` otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_main(
    worker_id,
    config_dict,
    spec_dicts,
    result_queue,
    abort_event,
    checkpoints=False,
    checkpoint_capacity=None,
    fast=True,
    telemetry_mode=MODE_OFF,
    probes_payload=None,
    shared_descriptor=None,
    resources_payload=None,
    profile=False,
):
    """Run one shard of the plan and stream results back.

    Message protocol (all picklable builtins):

    * ``("result", worker_id, record_fields)`` per finished experiment;
    * ``("spans", worker_id, span_records)`` right after a result, when
      the run is telemetered at span level;
    * ``("probes", worker_id, probe_payloads)`` right after a result,
      when the run is probed;
    * ``("resources", worker_id, sample_records)`` right after a result,
      when the run samples worker resources (``resources_payload`` is a
      :class:`~repro.core.resources.ResourceConfig` dict);
    * ``("metrics", worker_id, registry_snapshot)`` once after the
      shard, when telemetry is on (the coordinator merges it);
    * ``("profile", worker_id, stats_table)`` once after the shard, when
      ``profile`` wrapped the shard loop in :mod:`cProfile` (the
      coordinator aggregates the tables);
    * ``("error", worker_id, traceback_text)`` once on failure;
    * ``("done", worker_id, None)`` always, as the last message.

    With ``checkpoints`` the worker builds its own checkpoint cache —
    snapshots hold live target references and never cross the process
    boundary; each shard of the (coordinator-sorted) plan is itself in
    first-injection order, so per-worker caches stay effective.

    With ``telemetry_mode`` the worker keeps a local
    :class:`~repro.core.telemetry.Telemetry` (never a file or database
    sink — persistence stays with the single-writer coordinator).

    With ``shared_descriptor`` the worker attaches the coordinator's
    one-time shared-state publication (:mod:`repro.core.sharedstate`) —
    the reference trace, golden probe snapshots, and fault-free initial
    image — instead of re-deriving them locally: no per-worker
    ``phase.reference`` re-run, golden chain images read zero-copy from
    the shared segment (or from the inline serialising-fallback
    payload), and the checkpoint cache starts pre-seeded with the armed
    cycle-0 image.  The whole setup is timed as
    ``phase.worker_startup``.

    With ``probes_payload`` (``{"config": ..., "golden": ...}``) and no
    shared descriptor, the worker rebuilds a local probe session around
    the coordinator's golden snapshots — the snapshots are
    deterministic, so every worker diffs against the very same
    fault-free images.
    """
    shared_view = None
    try:
        import repro  # noqa: F401  (registers built-in targets under spawn)

        from .algorithms import FaultInjectionAlgorithms
        from .plugins import create_target
        from .triggers import ReferenceTrace

        config = CampaignConfig.from_dict(config_dict)
        tele = Telemetry(telemetry_mode)
        sampler = None
        if resources_payload is not None:
            sampler = ResourceSampler(
                ResourceConfig.from_dict(resources_payload), worker=worker_id
            )
        collector = ProfileCollector() if profile else None
        with tele.time("phase.worker_startup"):
            target = create_target(config.target)
            target.set_fast_path(fast)
            algorithms = FaultInjectionAlgorithms(target, db=None)
            algorithms.telemetry = tele
            if checkpoints and target.supports_checkpoints:
                algorithms.checkpoints = (
                    CheckpointCache(checkpoint_capacity)
                    if checkpoint_capacity
                    else CheckpointCache()
                )
            probes = None
            if shared_descriptor is not None:
                shared_view = sharedstate.SharedStateView.attach(shared_descriptor)
                meta = shared_view.meta
                trace = ReferenceTrace.from_payload(meta["trace"])
                probes_meta = meta.get("probes")
                if probes_meta is not None:
                    probes = ProbeSession.create(
                        target,
                        lambda: algorithms._prepare_target(
                            config, faulty_environment=False
                        ),
                        config.termination,
                        ProbeConfig.from_dict(probes_meta["config"]),
                        golden=GoldenSnapshots.from_shared(
                            probes_meta["golden"], shared_view
                        ),
                    )
                    algorithms.probes = probes
                initial = meta.get("initial")
                if initial is not None and algorithms.checkpoints is not None:
                    # The coordinator's armed cycle-0 image: every
                    # experiment's reset-and-run preamble becomes one
                    # buffer-copy restore instead.
                    algorithms.checkpoints.save(0, initial)
            else:
                with tele.time("phase.reference"):
                    _info, trace = algorithms.compute_reference_trace(config)
                if probes_payload is not None:
                    probes = ProbeSession.create(
                        target,
                        lambda: algorithms._prepare_target(
                            config, faulty_environment=False
                        ),
                        config.termination,
                        ProbeConfig.from_dict(probes_payload["config"]),
                        golden=GoldenSnapshots.from_payload(probes_payload["golden"]),
                    )
                    algorithms.probes = probes
            run_experiment = algorithms.experiment_runner(config.technique)
        if sampler is not None:
            sampler.sample("worker_startup")
        if collector is not None:
            collector.start()
        for spec_dict in spec_dicts:
            if abort_event.is_set():
                break
            spec = ExperimentSpec.from_dict(spec_dict)
            record = run_experiment(config, spec, trace)
            result_queue.put(
                (
                    "result",
                    worker_id,
                    {
                        "experiment_name": record.experiment_name,
                        "campaign_name": record.campaign_name,
                        "experiment_data": record.experiment_data,
                        "state_vector": record.state_vector,
                    },
                )
            )
            if tele.spans_enabled:
                result_queue.put(("spans", worker_id, tele.drain_spans()))
            if probes is not None and probes.has_pending:
                result_queue.put(("probes", worker_id, probes.drain()))
            if sampler is not None:
                sampler.maybe_sample()
                if sampler.pending:
                    result_queue.put(("resources", worker_id, sampler.drain()))
        if collector is not None:
            collector.stop()
        if sampler is not None:
            sampler.sample("shard_end")
            if tele.enabled:
                sampler.fold_into(tele.metrics)
            if sampler.pending:
                result_queue.put(("resources", worker_id, sampler.drain()))
        if tele.enabled:
            for key, value in target.execution_stats().items():
                if key == "cycles":
                    continue  # point-in-time, not a counter
                tele.metrics.inc(f"engine.{key}", value)
            result_queue.put(("metrics", worker_id, tele.metrics.snapshot()))
        if collector is not None:
            result_queue.put(("profile", worker_id, collector.stats_payload()))
    except BaseException:
        # BaseException, not Exception: a worker killed mid-chunk (e.g.
        # KeyboardInterrupt reaching the child) must still report before
        # the unconditional "done" below, or the coordinator would read
        # the early "done" as a clean, complete shard.
        logger.exception("campaign worker %d crashed while running its shard", worker_id)
        result_queue.put(("error", worker_id, traceback.format_exc()))
    finally:
        if shared_view is not None:
            shared_view.close()
        result_queue.put(("done", worker_id, None))


class ParallelCampaignRunner:
    """Coordinator for a multi-process campaign run.

    Wraps a :class:`~repro.core.algorithms.FaultInjectionAlgorithms`
    instance (whose database connection and progress reporter it
    reuses); entered through
    ``FaultInjectionAlgorithms.run_campaign(..., workers=N)`` or
    directly::

        runner = ParallelCampaignRunner(session.algorithms, workers=4)
        result = runner.run(config)
    """

    def __init__(self, algorithms, workers: int, batch_size: int = 64) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if algorithms.db is None:
            raise ConfigurationError(
                "the parallel coordinator needs a database connection"
            )
        self.algorithms = algorithms
        self.workers = workers
        self.batch_size = batch_size

    # ------------------------------------------------------------------
    def run(
        self,
        config: CampaignConfig,
        resume: bool = False,
        checkpoints: bool = False,
        fast: bool = True,
        shared_state: bool = True,
    ):
        """Mirror of the serial ``_campaign_loop``, with the experiment
        bodies fanned out to worker processes.  ``checkpoints`` sorts
        the plan by first-injection cycle before sharding and has each
        worker keep its own checkpoint cache; ``fast`` selects the
        execution engine in every worker (results are bit-identical
        either way).

        ``shared_state`` publishes the worker-startup state — reference
        trace, golden probe snapshots, armed initial image — once via
        :mod:`repro.core.sharedstate` for zero-copy attachment; when
        False (or when shared memory is unavailable) the same content
        ships inline through the worker arguments instead.  Rows are
        bit-identical either way."""
        from .algorithms import CampaignResult, emit_pruned_events

        algorithms = self.algorithms
        db: GoofiDatabase = algorithms.db
        progress: ProgressReporter = algorithms.progress
        tele = algorithms.telemetry
        bus = algorithms.events
        sampler: ResourceSampler | None = None
        if algorithms.resource_config is not None:
            # The coordinator samples its own process too: its phases
            # (reference, plan, golden) run before any worker exists.
            sampler = ResourceSampler(
                algorithms.resource_config, worker=COORDINATOR_WORKER
            )
        if resume:
            already_logged = {
                record.experiment_name for record in db.iter_experiments(config.name)
            }
        else:
            already_logged = set()
            db.delete_campaign_experiments(config.name)
        # The reference run stays in the coordinator: it is the one row
        # the workers must not race to write.
        with tele.time("phase.reference"):
            trace = algorithms.make_reference_run(config)
        if sampler is not None:
            sampler.sample("reference")
        space = algorithms.target.location_space()
        with tele.time("phase.plan"):
            plan = PlanGenerator(config, space, trace).generate()
        if sampler is not None:
            sampler.sample("plan")
        remaining = [spec for spec in plan if spec.name not in already_logged]
        prune_plan: PrunePlan | None = None
        if algorithms.prune_config is not None:
            # Classification and row synthesis stay in the coordinator
            # (it owns the trace, the plan, and the single DB writer);
            # workers only ever see the specs left to simulate.
            with tele.time("phase.prune"):
                prune_plan = build_prune_plan(
                    config,
                    trace,
                    space,
                    remaining,
                    algorithms.prune_config,
                    algorithms._reference_record,
                )
                remaining = prune_plan.to_run
                upfront = prune_plan.upfront_records()
                for start in range(0, len(upfront), 256):
                    db.save_experiments(upfront[start : start + 256])
            logger.info(
                "campaign %r: pruned %d/%d experiments (%d spot-checks)%s",
                config.name,
                len(prune_plan.pruned_specs),
                prune_plan.planned,
                len(prune_plan.spot_checks),
                f" — {prune_plan.disabled_reason}"
                if prune_plan.disabled_reason
                else "",
            )
            if tele.enabled:
                tele.metrics.inc("prune.pruned", len(prune_plan.pruned_specs))
                tele.metrics.inc("prune.skipped", prune_plan.skipped)
                tele.metrics.inc("prune.spot_checks", len(prune_plan.spot_checks))
        golden = None
        if algorithms.probe_config is not None:
            # The golden snapshots are captured once, here, and shared
            # with every worker: experiments in all shards diff against
            # the same fault-free images.
            with tele.time("phase.golden"):
                golden = capture_golden_snapshots(
                    algorithms.target,
                    lambda: algorithms._prepare_target(config, faulty_environment=False),
                    config.termination,
                    algorithms.probe_config,
                )
            # The golden pass also records per-element liveness — the
            # summary rides along in the shared metadata.
            golden.liveness = liveness_map(trace)
            if sampler is not None:
                sampler.sample("golden")
        use_checkpoints = checkpoints and algorithms.target.supports_checkpoints
        if use_checkpoints:
            # Sorting before the round-robin sharding keeps every shard
            # in first-injection order too.
            remaining = sort_plan_by_first_injection(remaining, trace)
        if bus.enabled:
            # Same deterministic prefix as the serial loop: the
            # campaign_planned record and the pruned-experiment events
            # are emitted by the coordinator before any worker starts,
            # so recorded streams agree for every worker count.
            bus.emit(
                "campaign_planned",
                campaign=config.name,
                technique=config.technique,
                workload=config.workload,
                planned=len(plan),
                already_logged=len(already_logged),
                pruned=(
                    len(prune_plan.pruned_specs) if prune_plan is not None else 0
                ),
                to_run=len(remaining),
                workers=self.workers,
                checkpoints=use_checkpoints,
            )
            if prune_plan is not None:
                emit_pruned_events(bus, config.name, prune_plan, len(remaining))
        progress.start(config.name, len(remaining))
        db.set_campaign_status(config.name, "running")
        if not remaining:
            progress.finish()
            db.set_campaign_status(config.name, "completed")
            if bus.enabled:
                bus.emit(
                    "campaign_started", campaign=config.name, total=0, workers=0
                )
                bus.emit(
                    "campaign_finished",
                    campaign=config.name,
                    completed=0,
                    total=0,
                    elapsed_seconds=round(progress.elapsed_seconds, 6),
                )
            if sampler is not None:
                sampler.sample("finish")
                samples = sampler.drain()
                if bus.enabled:
                    for sample in samples:
                        bus.emit(
                            "resource_sample",
                            campaign=config.name,
                            worker=sample["worker"],
                            sample=sample,
                        )
                db.save_resource_samples(
                    [
                        ResourceSampleRecord(
                            campaign_name=config.name,
                            sample=sample,
                            worker=sample["worker"],
                        )
                        for sample in samples
                    ]
                )
                if tele.enabled:
                    sampler.fold_into(tele.metrics)
            return CampaignResult(
                campaign_name=config.name,
                experiments_run=0,
                experiments_planned=0,
                aborted=False,
                elapsed_seconds=progress.elapsed_seconds,
                telemetry=(
                    algorithms._finish_telemetry(config.name)
                    if tele.enabled
                    else None
                ),
                prune=prune_plan.report() if prune_plan is not None else None,
                resource_samples=(
                    sampler.samples_taken if sampler is not None else None
                ),
            )

        # Everything a worker needs on startup, derived exactly once:
        # the reference trace, the golden probe snapshots (chain images
        # as packed buffers), and — under checkpointing — the armed
        # fault-free initial image that seeds each worker's cache.
        shared_meta: dict = {"trace": trace.to_payload(), "probes": None, "initial": None}
        shared_buffers: dict[str, bytes] = {}
        if golden is not None:
            golden_meta, shared_buffers = golden.to_shared()
            shared_meta["probes"] = {
                "config": algorithms.probe_config.to_dict(),
                "golden": golden_meta,
            }
        if use_checkpoints:
            with tele.time("phase.initial_image"):
                algorithms._prepare_target(config)
                algorithms.target.run_workload()
                shared_meta["initial"] = algorithms.target.save_state()
        shared_handle = None
        if shared_state:
            shared_handle = sharedstate.publish(shared_meta, shared_buffers)
        shared_descriptor = (
            shared_handle.descriptor
            if shared_handle is not None
            else sharedstate.inline_descriptor(shared_meta, shared_buffers)
        )

        context = _start_context()
        result_queue = context.Queue()
        abort_event = context.Event()
        worker_count = min(self.workers, len(remaining))
        if tele.enabled:
            tele.metrics.set_gauge("workers", worker_count)
        # Round-robin sharding keeps the shards balanced even when
        # experiment cost correlates with plan position.
        shards = [remaining[start::worker_count] for start in range(worker_count)]
        processes = [
            context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    config.to_dict(),
                    [spec.to_dict() for spec in shard],
                    result_queue,
                    abort_event,
                    use_checkpoints,
                    algorithms.checkpoint_capacity,
                    fast,
                    tele.mode,
                    None,  # probes_payload — superseded by the descriptor
                    shared_descriptor,
                    (
                        algorithms.resource_config.to_dict()
                        if algorithms.resource_config is not None
                        else None
                    ),
                    algorithms.profile,
                ),
                daemon=True,
            )
            for worker_id, shard in enumerate(shards)
        ]
        logger.info(
            "campaign %r: sharding %d experiments over %d workers",
            config.name,
            len(remaining),
            worker_count,
        )
        if bus.enabled:
            bus.emit(
                "campaign_started",
                campaign=config.name,
                total=len(remaining),
                workers=worker_count,
            )
        for worker_id, process in enumerate(processes):
            process.start()
            if bus.enabled:
                bus.emit(
                    "worker_started",
                    campaign=config.name,
                    worker=worker_id,
                    experiments=len(shards[worker_id]),
                )

        completed = 0
        aborted = False
        failed = False
        failures: list[str] = []
        pending: list[ExperimentRecord] = []
        pending_spans: list[SpanRecord] = []
        pending_probes: list[ProbeRecord] = []
        pending_resources: list[ResourceSampleRecord] = []
        profile_payloads: list[dict] = []
        resource_count = 0
        live = set(range(worker_count))
        dead_polls = dict.fromkeys(live, 0)

        # Workers finish experiments in wall-clock order, but the event
        # stream must not depend on the worker count: results buffer by
        # their plan position and release as an in-order prefix, so the
        # recorded experiment_finished sequence equals the serial one in
        # every deterministic field.
        event_order = {spec.name: index for index, spec in enumerate(remaining)}
        event_buffer: dict[int, tuple] = {}
        event_next = 0
        event_released = 0

        def release_experiment_events() -> None:
            nonlocal event_next, event_released
            while event_next in event_buffer:
                progress_event, pruned, spot_check, from_worker = (
                    event_buffer.pop(event_next)
                )
                event_released += 1
                bus.experiment_finished(
                    progress_event,
                    pruned=pruned,
                    spot_check=spot_check,
                    worker=from_worker,
                    completed=event_released,
                )
                event_next += 1

        def flush_pending() -> None:
            """Write the batched rows (and any relayed span records,
            probe summaries, and resource samples), timing the write
            when telemetry is on."""
            nonlocal pending, pending_spans, pending_probes, pending_resources
            if not (pending or pending_spans or pending_probes or pending_resources):
                return
            started = time.perf_counter()
            if pending:
                db.save_experiments(pending)
            if pending_spans:
                db.save_spans(pending_spans)
            if pending_probes:
                db.save_probes(pending_probes)
            if pending_resources:
                db.save_resource_samples(pending_resources)
            if tele.enabled:
                elapsed = time.perf_counter() - started
                metrics = tele.metrics
                metrics.add_time("phase.db_write", elapsed)
                metrics.observe("db.batch_seconds", elapsed)
                metrics.inc("db.rows", len(pending))
                metrics.inc("db.batches")
            pending = []
            pending_spans = []
            pending_probes = []
            pending_resources = []

        def ingest_samples(samples: list[dict]) -> None:
            """Queue worker (or coordinator) resource samples for the
            next flush, emitting their events on arrival — resource
            timelines are wall-clock observations, so unlike experiment
            events they have no deterministic plan order to restore."""
            nonlocal resource_count
            resource_count += len(samples)
            if bus.enabled:
                for sample in samples:
                    bus.emit(
                        "resource_sample",
                        campaign=config.name,
                        worker=sample["worker"],
                        sample=sample,
                    )
            pending_resources.extend(
                ResourceSampleRecord(
                    campaign_name=config.name,
                    sample=sample,
                    worker=sample["worker"],
                )
                for sample in samples
            )

        try:
            while live:
                if progress.abort_requested and not abort_event.is_set():
                    aborted = True
                    abort_event.set()
                try:
                    kind, worker_id, payload = result_queue.get(timeout=_POLL_SECONDS)
                except queue_module.Empty:
                    for worker_id in list(live):
                        if processes[worker_id].is_alive():
                            continue
                        # A cleanly exiting worker always sends "done"
                        # first; give the queue feeder a grace period
                        # before declaring the worker crashed.
                        dead_polls[worker_id] += 1
                        if dead_polls[worker_id] >= _DEAD_WORKER_GRACE_POLLS:
                            live.discard(worker_id)
                            exitcode = processes[worker_id].exitcode
                            failures.append(
                                f"worker {worker_id} died without reporting "
                                f"(exit code {exitcode})"
                            )
                            if bus.enabled:
                                bus.emit(
                                    "worker_failed",
                                    campaign=config.name,
                                    worker=worker_id,
                                )
                            abort_event.set()
                    continue
                if kind == "result":
                    record = ExperimentRecord(**payload)
                    spot_checked = (
                        prune_plan is not None
                        and record.experiment_name in prune_plan.spot_checks
                    )
                    if spot_checked:
                        # Hard-fails with PruneDivergence on mismatch;
                        # the confirmed synthesised row (pruned flag
                        # set) is what gets logged.
                        record = prune_plan.verify_spot_check(
                            record.experiment_name, record
                        )
                    pending.append(record)
                    if len(pending) >= self.batch_size:
                        flush_pending()
                    completed += 1
                    progress_event = progress.experiment_done(
                        payload["experiment_name"],
                        payload["state_vector"]["termination"]["outcome"],
                    )
                    if bus.enabled:
                        event_buffer[event_order[record.experiment_name]] = (
                            progress_event,
                            record.pruned,
                            spot_checked,
                            worker_id,
                        )
                        release_experiment_events()
                elif kind == "spans":
                    for span in payload:
                        # Lane annotation for the trace export.
                        span.setdefault("worker", worker_id)
                    if bus.enabled:
                        for span in payload:
                            bus.emit(
                                "span",
                                campaign=config.name,
                                worker=span["worker"],
                                span=span,
                            )
                    pending_spans.extend(
                        SpanRecord(
                            experiment_name=span["experiment"],
                            campaign_name=config.name,
                            span=span,
                        )
                        for span in payload
                    )
                elif kind == "probes":
                    pending_probes.extend(
                        ProbeRecord(
                            experiment_name=probe["experiment"],
                            campaign_name=config.name,
                            probe=probe,
                        )
                        for probe in payload
                    )
                elif kind == "resources":
                    ingest_samples(payload)
                elif kind == "metrics":
                    tele.metrics.merge(payload)
                elif kind == "profile":
                    profile_payloads.append(payload)
                elif kind == "error":
                    logger.error("worker %d failed:\n%s", worker_id, payload)
                    failures.append(f"worker {worker_id} failed:\n{payload}")
                    if bus.enabled:
                        bus.emit(
                            "worker_failed", campaign=config.name, worker=worker_id
                        )
                    abort_event.set()
                elif kind == "done":
                    live.discard(worker_id)
                    if bus.enabled:
                        bus.emit(
                            "worker_done", campaign=config.name, worker=worker_id
                        )
            if progress.abort_requested:
                aborted = True
            if not aborted and not failures and completed < len(remaining):
                # Every worker said "done" yet results are missing: a
                # crash slipped past the per-worker error reporting (a
                # worker killed between its last result and its error
                # message).  Never let that pass as a clean exit.
                failures.append(
                    f"workers drained cleanly but only {completed} of "
                    f"{len(remaining)} sharded experiments reported results"
                )
        except BaseException:
            failed = True
            raise
        finally:
            abort_event.set()
            for process in processes:
                process.join(timeout=10)
                if process.is_alive():
                    process.terminate()
                    process.join()
            result_queue.close()
            if shared_handle is not None:
                shared_handle.close()
            if sampler is not None:
                sampler.sample("finish")
                ingest_samples(sampler.drain())
            try:
                flush_pending()
            except Exception:
                # Always leave a trace of the lost batch; re-raise only
                # when it would not mask the original failure.
                logger.exception(
                    "campaign %r: failed to flush %d pending record(s) "
                    "during coordinator cleanup",
                    config.name,
                    len(pending) + len(pending_spans) + len(pending_probes),
                )
                if not failed:
                    raise
            progress.finish()
            db.set_campaign_status(
                config.name,
                "aborted" if (aborted or failed or failures) else "completed",
            )
            if bus.enabled:
                # On an abort some buffered events may never see their
                # in-order predecessors arrive; drain what we have in
                # plan order so the recording still accounts for every
                # logged experiment.
                for index in sorted(event_buffer):
                    progress_event, pruned, spot_check, from_worker = (
                        event_buffer.pop(index)
                    )
                    event_released += 1
                    bus.experiment_finished(
                        progress_event,
                        pruned=pruned,
                        spot_check=spot_check,
                        worker=from_worker,
                        completed=event_released,
                    )
                bus.emit(
                    "campaign_aborted"
                    if (aborted or failed or failures)
                    else "campaign_finished",
                    campaign=config.name,
                    completed=completed,
                    total=len(remaining),
                    elapsed_seconds=round(progress.elapsed_seconds, 6),
                )
        if failures:
            raise WorkerFailure(
                f"parallel campaign {config.name!r} aborted; "
                + "; ".join(failures)
            )
        profile_data = None
        if profile_payloads:
            profile_data = profile_summary(
                merge_profile_stats(profile_payloads),
                workers=len(profile_payloads),
            )
        if sampler is not None and tele.enabled:
            sampler.fold_into(tele.metrics)
        snapshot = (
            algorithms._finish_telemetry(config.name, profile=profile_data)
            if tele.enabled
            else None
        )
        return CampaignResult(
            campaign_name=config.name,
            experiments_run=completed,
            experiments_planned=len(remaining),
            aborted=aborted,
            elapsed_seconds=progress.elapsed_seconds,
            telemetry=snapshot,
            prune=prune_plan.report() if prune_plan is not None else None,
            profile=profile_data,
            resource_samples=(
                resource_count if algorithms.resource_config is not None else None
            ),
        )
