"""Checkpoint/fast-forward support for the campaign engines.

Every experiment starts with the same fault-free prefix: reset the
target, download the workload, and simulate from cycle 0 up to the
first injection cycle.  On a simulated target that prefix is pure
redundancy — the state at the first breakpoint is a deterministic
function of the workload alone.  This module caches that state:

* the campaign loop sorts the plan by first-injection cycle, so the
  sequence of breakpoints is monotone;
* at each experiment's *first* breakpoint (always fault-free: nothing
  has been injected yet) the target state is snapshotted into a small
  LRU cache keyed by cycle;
* the next experiment restores the newest snapshot at or before its own
  first injection cycle and fast-forwards only the remaining delta.

Correctness rests on the snapshots being *full fidelity*
(``TargetSystemInterface.save_state``/``restore_state``): a restored
target must be indistinguishable from one that simulated the prefix
itself, so logged rows are bit-identical to a no-checkpoint run — the
invariant the equivalence tests and bench E11 enforce.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from .errors import ConfigurationError

#: Default LRU capacity.  Each entry holds a full target snapshot
#: (dominated by the memory image — ~0.5 MiB for the Thor target), so
#: a handful of entries covers the monotone access pattern of a sorted
#: plan while keeping the footprint small.
DEFAULT_CHECKPOINT_CAPACITY = 8


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """One cached fault-free target snapshot."""

    cycle: int
    state: object


@dataclass(slots=True)
class CheckpointStats:
    """Cache-effectiveness counters (reported by the bench and the
    campaign result)."""

    saves: int = 0
    restores: int = 0
    misses: int = 0
    evictions: int = 0

    def to_dict(self) -> dict:
        return {
            "saves": self.saves,
            "restores": self.restores,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class CheckpointCache:
    """A small LRU of :class:`Checkpoint` entries keyed by cycle.

    ``nearest(cycle)`` answers the only query the campaign loop needs:
    the newest snapshot taken at or before a given injection cycle.
    """

    def __init__(self, capacity: int = DEFAULT_CHECKPOINT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(f"checkpoint capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[int, object] = OrderedDict()
        self.stats = CheckpointStats()

    def __len__(self) -> int:
        return len(self._entries)

    def has(self, cycle: int) -> bool:
        """Whether a snapshot for exactly ``cycle`` is cached (lets the
        caller skip building a redundant snapshot)."""
        return cycle in self._entries

    def save(self, cycle: int, state: object) -> None:
        """Insert (or refresh) the snapshot for ``cycle``, evicting the
        least recently used entry when over capacity."""
        if cycle in self._entries:
            self._entries.move_to_end(cycle)
        self._entries[cycle] = state
        self.stats.saves += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def nearest(self, cycle: int) -> Checkpoint | None:
        """The newest cached snapshot at or before ``cycle`` (marked as
        recently used), or ``None`` — the caller then falls back to the
        full reset-and-run preamble."""
        best: int | None = None
        for key in self._entries:
            if key <= cycle and (best is None or key > best):
                best = key
        if best is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(best)
        self.stats.restores += 1
        return Checkpoint(cycle=best, state=self._entries[best])

    def clear(self) -> None:
        self._entries.clear()


def first_injection_cycle(spec, trace) -> int:
    """The cycle of the experiment's earliest fault trigger, resolved
    against the reference trace; 0 when the spec carries no resolvable
    trigger (pre-runtime techniques, which have no prefix to skip)."""
    cycles = []
    for fault in spec.faults:
        try:
            cycles.append(fault.trigger.resolve(trace))
        except Exception:
            # An unresolvable trigger fails later, in the experiment
            # body, with its proper error; sorting must not mask it.
            return 0
    return min(cycles, default=0)


def sort_plan_by_first_injection(plan, trace):
    """Stable-sort experiment specs by first-injection cycle, so the
    campaign's breakpoint sequence is monotone and every checkpoint
    taken is usable by all later experiments."""
    return sorted(plan, key=lambda spec: first_injection_cycle(spec, trace))
