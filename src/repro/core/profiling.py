"""Per-worker campaign profiling built on stdlib :mod:`cProfile`.

``goofi run --profile`` wraps each worker's experiment loop in a
:class:`cProfile.Profile`.  Workers ship their raw stats tables through
the result queue; the coordinator merges them and reduces the merged
table to a JSON-able top-N hotspot summary that is persisted alongside
the campaign telemetry snapshot (under the ``profile`` key) and rendered
by ``goofi stats --profile``.

Profiling is purely observational — the deterministic fault plan never
sees the profiler, so campaign rows are bit-identical profiled or not
(asserted by the test suite).
"""

from __future__ import annotations

import cProfile
from pathlib import PurePath

#: How many hotspots the persisted summary keeps (display may show fewer).
PROFILE_SUMMARY_LIMIT = 50


class ProfileCollector:
    """One worker's profiler with a queue-shippable payload."""

    __slots__ = ("_profile",)

    def __init__(self) -> None:
        self._profile = cProfile.Profile()

    def start(self) -> None:
        self._profile.enable()

    def stop(self) -> None:
        self._profile.disable()

    def stats_payload(self) -> dict:
        """Raw stats table: {(file, line, func): (cc, nc, tt, ct, callers)}.

        Keys and values are plain tuples/ints/floats, so the payload
        pickles cleanly through a multiprocessing queue.
        """
        self._profile.create_stats()
        return dict(self._profile.stats)


def merge_profile_stats(payloads: list[dict]) -> dict:
    """Merge per-worker stats tables the way :meth:`pstats.Stats.add` does
    (sum call counts and times per function; callers are dropped — the
    hotspot summary never uses them)."""
    merged: dict = {}
    for payload in payloads:
        for func, (cc, nc, tt, ct, _callers) in payload.items():
            if func in merged:
                occ, onc, ott, oct_, _ = merged[func]
                merged[func] = (occ + cc, onc + nc, ott + tt, oct_ + ct, {})
            else:
                merged[func] = (cc, nc, tt, ct, {})
    return merged


def _func_label(func: tuple) -> str:
    filename, lineno, name = func
    if filename == "~":  # builtins have no file
        return name
    parts = PurePath(filename).parts
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    return f"{short}:{lineno}({name})"


def profile_summary(merged: dict, *, workers: int,
                    limit: int = PROFILE_SUMMARY_LIMIT) -> dict:
    """Reduce a merged stats table to the persisted JSON summary."""
    ranked = sorted(merged.items(), key=lambda item: item[1][2], reverse=True)
    hotspots = [
        {
            "function": _func_label(func),
            "calls": nc,
            "primitive_calls": cc,
            "tottime": round(tt, 6),
            "cumtime": round(ct, 6),
        }
        for func, (cc, nc, tt, ct, _callers) in ranked[:limit]
    ]
    return {
        "workers": workers,
        "functions": len(merged),
        "total_calls": sum(nc for (_cc, nc, _tt, _ct, _c) in merged.values()),
        "total_tottime": round(
            sum(tt for (_cc, _nc, tt, _ct, _c) in merged.values()), 6),
        "hotspots": hotspots,
    }


def format_profile_report(campaign_name: str, summary: dict,
                          top: int = 15) -> str:
    """Render the ``goofi stats --profile`` hotspot table."""
    lines = [
        f"Profile: {campaign_name}",
        f"  workers profiled : {summary.get('workers', 0)}",
        f"  functions        : {summary.get('functions', 0)}",
        f"  total calls      : {summary.get('total_calls', 0)}",
        f"  total tottime    : {summary.get('total_tottime', 0.0):.3f}s",
        "",
        f"  {'tottime':>9}  {'cumtime':>9}  {'calls':>9}  function",
    ]
    for spot in summary.get("hotspots", [])[:top]:
        lines.append(
            f"  {spot['tottime']:>8.3f}s  {spot['cumtime']:>8.3f}s  "
            f"{spot['calls']:>9}  {spot['function']}"
        )
    if not summary.get("hotspots"):
        lines.append("  (no hotspots recorded)")
    return "\n".join(lines)
