"""Fault models.

"The tool currently supports the bit-flip fault model" — plus, from the
paper's future-extensions list, "additional fault models such as
intermittent and permanent faults".  All three are implemented:

:class:`TransientBitFlip`
    The location's bit is inverted once, at the trigger time.  Multiple-
    bit transient faults ("single or multiple transient bit-flip
    faults") are experiments carrying several transient flips.
:class:`StuckAt`
    A permanent fault: from the trigger time to the end of the run the
    bit is forced to 0 or 1 after every executed instruction.
:class:`IntermittentBitFlip`
    During an activity window starting at the trigger time, the bit is
    re-inverted at random instants with a per-cycle activation
    probability.

Transient flips are performed by the fault-injection algorithm itself
through the scan chains (read → invert → write back).  Permanent and
intermittent faults need the fault to *stay* applied while the workload
runs, which hardware scan chains cannot do; the simulated target
provides a fault-overlay hook for them
(:meth:`repro.core.framework.TargetSystemInterface.install_fault_overlay`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigurationError

MODEL_TRANSIENT = "transient_bitflip"
MODEL_STUCK_AT = "stuck_at"
MODEL_INTERMITTENT = "intermittent_bitflip"


@dataclass(frozen=True, slots=True)
class TransientBitFlip:
    """Invert the target bit once at the trigger time."""

    name = MODEL_TRANSIENT

    def to_dict(self) -> dict:
        return {"model": self.name}


@dataclass(frozen=True, slots=True)
class StuckAt:
    """Force the target bit to ``value`` from the trigger time onwards."""

    value: int

    name = MODEL_STUCK_AT

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ConfigurationError(f"stuck-at value must be 0 or 1, not {self.value}")

    def to_dict(self) -> dict:
        return {"model": self.name, "value": self.value}


@dataclass(frozen=True, slots=True)
class IntermittentBitFlip:
    """Randomly re-invert the target bit during an activity window.

    ``duration`` is the window length in cycles from the trigger time;
    ``activity`` is the per-cycle probability of a flip while active.
    """

    duration: int
    activity: float = 0.05

    name = MODEL_INTERMITTENT

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("intermittent fault duration must be positive")
        if not 0.0 < self.activity <= 1.0:
            raise ConfigurationError("intermittent activity must be in (0, 1]")

    def to_dict(self) -> dict:
        return {"model": self.name, "duration": self.duration, "activity": self.activity}


FaultModel = TransientBitFlip | StuckAt | IntermittentBitFlip


#: Accepted payload keys per model (beyond the ``model`` tag itself).
_MODEL_KEYS = {
    MODEL_TRANSIENT: frozenset(),
    MODEL_STUCK_AT: frozenset({"value"}),
    MODEL_INTERMITTENT: frozenset({"duration", "activity"}),
}


def model_from_dict(data: dict) -> FaultModel:
    """Deserialise a fault model stored in campaign/experiment data.

    Malformed payloads — unknown model names, unexpected or missing
    keys, non-numeric values (hand-written pack YAML, corrupted
    experiment rows) — raise :class:`ConfigurationError` naming the
    offending payload rather than leaking a bare ``TypeError`` or
    ``KeyError``.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(f"fault-model payload must be a mapping, got {data!r}")
    name = data.get("model")
    if name not in _MODEL_KEYS:
        known = ", ".join(sorted(_MODEL_KEYS))
        raise ConfigurationError(
            f"unknown fault model {name!r} in payload {data!r}; known: {known}"
        )
    unexpected = sorted(set(data) - _MODEL_KEYS[name] - {"model"})
    if unexpected:
        accepted = ", ".join(sorted(_MODEL_KEYS[name])) or "(none)"
        raise ConfigurationError(
            f"{name} fault model does not accept key(s) {', '.join(unexpected)} "
            f"in payload {data!r}; accepted: {accepted}"
        )
    try:
        if name == MODEL_TRANSIENT:
            return TransientBitFlip()
        if name == MODEL_STUCK_AT:
            return StuckAt(value=int(data["value"]))
        return IntermittentBitFlip(
            duration=int(data["duration"]), activity=float(data.get("activity", 0.05))
        )
    except KeyError as exc:
        raise ConfigurationError(
            f"{name} fault model payload {data!r} is missing key {exc}"
        ) from None
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"bad {name} fault model payload {data!r}: {exc}"
        ) from None


def is_transient(model: FaultModel) -> bool:
    return isinstance(model, TransientBitFlip)
