"""The GOOFI framework: the target-system interface template.

Paper Figure 3: "The Framework class is used as a template by the
programmer when creating a new TargetSystemInterface class.  The
TargetSystemInterface class inherits the FaultInjectionAlgorithms class
and can therefore use the defined fault injection algorithms directly.
Only the abstract methods used by the algorithm need to be implemented."

In this Python reproduction the roles map as follows:

* :class:`TargetSystemInterface` (this module) — the abstract template:
  the building-block methods each target must provide (the paper's
  ``initTestCard``, ``loadWorkload``, ``runWorkload``,
  ``waitForBreakpoint``, ``writeMemory``, ``readMemory``,
  ``readScanChain``, ``injectFault``, ``writeScanChain``,
  ``waitForTermination``, in snake_case), plus those added by the
  extension techniques (detail-mode stepping, trace recording, fault
  overlays for permanent/intermittent models).
* :class:`repro.core.algorithms.FaultInjectionAlgorithms` — the generic
  fault-injection algorithms, written purely against these methods.

The scan-chain read/modify/write protocol is *stateful*, exactly like
the paper's void methods: ``read_scan_chain`` captures the chain into a
buffer held by the interface, ``inject_fault`` inverts bits in the
buffer, ``write_scan_chain`` shifts the buffer back into the target.
"""

from __future__ import annotations

import abc
from array import array
from dataclasses import dataclass, field

from .errors import TargetError
from .faultmodels import FaultModel
from .locations import KIND_SCAN, Location, LocationSpace
from .triggers import ReferenceTrace

#: Technique-independent termination outcomes (the target maps its
#: native debug events onto these).
OUTCOME_WORKLOAD_END = "workload_end"
OUTCOME_DETECTED = "error_detected"
OUTCOME_TIMEOUT = "timeout"


@dataclass(frozen=True, slots=True)
class TerminationInfo:
    """How a fault-injection experiment run ended.

    ``detection`` carries the firing EDM's serialised
    :class:`~repro.targets.thor.edm.DetectionEvent` when
    ``outcome == OUTCOME_DETECTED``.
    """

    outcome: str
    cycle: int
    iteration: int = 0
    detection: dict | None = None

    def to_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "cycle": self.cycle,
            "iteration": self.iteration,
            "detection": self.detection,
        }


@dataclass(frozen=True, slots=True)
class Termination:
    """Experiment termination conditions (paper §3.2): time-out value,
    and for infinite-loop workloads a maximum number of iterations."""

    max_cycles: int
    max_iterations: int | None = None

    def to_dict(self) -> dict:
        return {"max_cycles": self.max_cycles, "max_iterations": self.max_iterations}

    @classmethod
    def from_dict(cls, data: dict) -> "Termination":
        return cls(
            max_cycles=int(data["max_cycles"]),
            max_iterations=(
                int(data["max_iterations"]) if data.get("max_iterations") is not None else None
            ),
        )


@dataclass(frozen=True, slots=True)
class ObservationSpec:
    """What to log into the state vector ("the locations to observe can
    be selected by the user in the set-up phase").

    ``scan_elements`` are explicit ``"chain:element"`` keys;
    ``memory_ranges`` are ``(base, count)`` word ranges;
    ``include_outputs`` adds the workload's output-port log.
    """

    scan_elements: tuple[str, ...] = ()
    memory_ranges: tuple[tuple[int, int], ...] = ()
    include_outputs: bool = True

    def to_dict(self) -> dict:
        return {
            "scan_elements": list(self.scan_elements),
            "memory_ranges": [list(r) for r in self.memory_ranges],
            "include_outputs": self.include_outputs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ObservationSpec":
        return cls(
            scan_elements=tuple(data.get("scan_elements", [])),
            memory_ranges=tuple((int(b), int(c)) for b, c in data.get("memory_ranges", [])),
            include_outputs=bool(data.get("include_outputs", True)),
        )


class TargetSystemInterface(abc.ABC):
    """Abstract target interface — the paper's Framework template.

    Subclass per target system; implement the abstract methods; register
    the class in :mod:`repro.core.plugins`.  The fault-injection
    algorithms never touch anything below this interface.
    """

    #: Name under which the target registers itself (``TargetSystemData``
    #: primary key).
    target_name: str = "unnamed-target"
    #: Identifier of the host link hardware (``testCardName`` column).
    test_card_name: str = "simulated-test-card"
    #: Whether :meth:`save_state`/:meth:`restore_state` are implemented.
    #: The campaign engines only use checkpointing on targets that
    #: declare support; a real hardware board typically cannot.
    supports_checkpoints: bool = False
    #: Whether :meth:`run_until_cycle` is implemented (and therefore the
    #: campaign-scale propagation probes of :mod:`repro.core.probes` can
    #: stop the run at probe cycles without losing the termination
    #: conditions).  Requires the target to fold the probe stop into its
    #: normal run loop the same way time breakpoints fold in, so probed
    #: and un-probed runs stay bit-identical.
    supports_probes: bool = False

    def __init__(self) -> None:
        self._scan_buffers: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Paper Figure 2 building blocks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def init_test_card(self) -> None:
        """Initialise the host link and reset the target system."""

    @abc.abstractmethod
    def load_workload(self, workload_id: str) -> None:
        """Download the named workload (and its initial input data)."""

    @abc.abstractmethod
    def write_memory(self, address: int, words: list[int]) -> None:
        """Host DMA write (input data download; pre-runtime SWIFI)."""

    @abc.abstractmethod
    def read_memory(self, address: int, count: int) -> list[int]:
        """Host DMA read (result read-back; state-vector logging)."""

    @abc.abstractmethod
    def run_workload(self) -> None:
        """Start (arm) execution of the downloaded workload."""

    @abc.abstractmethod
    def wait_for_breakpoint(self, cycle: int) -> TerminationInfo | None:
        """Run until the time breakpoint at ``cycle``.

        Returns ``None`` when the breakpoint was reached (the target is
        stopped at the injection point), or a :class:`TerminationInfo`
        when the run ended *before* the breakpoint (earlier fault
        crashed it, workload finished, watchdog fired)."""

    @abc.abstractmethod
    def wait_for_termination(self, termination: Termination) -> TerminationInfo:
        """Resume and run until a termination condition (§3.2)."""

    def run_until_cycle(
        self, cycle: int, termination: Termination
    ) -> TerminationInfo | None:
        """Run until ``cycle`` *or* until a termination condition fires,
        whichever comes first — the probe-stop primitive.

        Unlike :meth:`wait_for_breakpoint` (which only bounds the run by
        the breakpoint cycle), the full termination conditions — the
        watchdog ``max_cycles`` *and* the ``max_iterations`` loop limit —
        stay armed while running to the stop cycle, so slicing a
        run-to-termination segment at probe cycles observes exactly the
        outcome an unsliced :meth:`wait_for_termination` would.  Returns
        ``None`` when the stop cycle was reached, or the
        :class:`TerminationInfo` when the run ended first.

        Only targets declaring ``supports_probes`` implement this;
        simulated targets fold the stop cycle into their fused fast loop
        exactly like a time breakpoint."""
        raise TargetError(
            f"target {self.target_name!r} does not support probe stops"
        )

    def probe_scan_chain(self, chain: str) -> tuple[int, ...]:
        """Read-only snapshot for propagation probes: every element's
        value in chain order, *without* touching the stateful injection
        buffer of :meth:`read_scan_chain`, so probing mid-experiment can
        never disturb a pending read/inject/write sequence.  Returns the
        per-element tuple rather than the packed bit vector — probes
        diff snapshots element-wise, and skipping the bit-vector
        assembly roughly halves the per-probe cost.

        Only targets declaring ``supports_probes`` implement this."""
        raise TargetError(
            f"target {self.target_name!r} does not support propagation probes"
        )

    def probe_scan_chain_packed(self, chain: str):
        """:meth:`probe_scan_chain` packed into an ``array('Q')``
        buffer, or ``None`` when packing is unavailable (an element
        value beyond 64 bits).  Probe readout compares two packed
        buffers in one C-level operation and only walks elements of
        chains that differ; ``None`` keeps the per-element tuple path
        authoritative.  Targets with a packed snapshot primitive
        override this; the default packs the tuple snapshot."""
        try:
            return array("Q", self.probe_scan_chain(chain))
        except OverflowError:
            return None

    def probe_element_names(self, chain: str) -> list[str]:
        """Element names of ``chain`` in :meth:`probe_scan_chain`
        snapshot order.  Only probe-capable targets implement this."""
        raise TargetError(
            f"target {self.target_name!r} does not support propagation probes"
        )

    @abc.abstractmethod
    def _scan_read_raw(self, chain: str) -> int:
        """Shift out one scan chain (target-specific)."""

    @abc.abstractmethod
    def _scan_write_raw(self, chain: str, value: int) -> None:
        """Shift one scan chain back in (target-specific)."""

    # The stateful read/inject/write protocol of Figure 2, implemented
    # once here on top of the raw chain access.
    def read_scan_chain(self, chain: str) -> int:
        """Capture ``chain`` into the injection buffer and return it."""
        value = self._scan_read_raw(chain)
        self._scan_buffers[chain] = value
        return value

    def inject_fault(self, location: Location) -> None:
        """Invert one bit of a captured scan chain in the buffer.

        Must be preceded by :meth:`read_scan_chain` on that chain and
        followed by :meth:`write_scan_chain` to take effect — the same
        three-step dance as the paper's SCIFI algorithm.
        """
        if location.kind != KIND_SCAN:
            raise TargetError(
                f"inject_fault flips scan bits; got {location.label()} "
                f"(memory faults go through write_memory)"
            )
        if location.chain not in self._scan_buffers:
            raise TargetError(
                f"scan chain {location.chain!r} not captured; call read_scan_chain first"
            )
        position = self.scan_bit_position(location.chain, location.element, location.bit)
        self._scan_buffers[location.chain] ^= 1 << position

    def write_scan_chain(self, chain: str) -> None:
        """Shift the (possibly fault-injected) buffer back in."""
        if chain not in self._scan_buffers:
            raise TargetError(f"scan chain {chain!r} not captured; nothing to write")
        self._scan_write_raw(chain, self._scan_buffers[chain])

    # ------------------------------------------------------------------
    # Target metadata
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def scan_bit_position(self, chain: str, element: str, bit: int) -> int:
        """Absolute bit position of an element bit within a chain."""

    @abc.abstractmethod
    def location_space(self) -> LocationSpace:
        """Everything injectable/observable on this target."""

    @abc.abstractmethod
    def available_workloads(self) -> list[str]:
        """Workload identifiers :meth:`load_workload` accepts."""

    @abc.abstractmethod
    def describe(self) -> dict:
        """The ``TargetSystemData.configJson`` payload: location space,
        chain layouts, memory map, workloads, supported fault models."""

    # ------------------------------------------------------------------
    # Extension building blocks (added to the Framework by the
    # techniques that need them, as §2.1 prescribes)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def single_step(self, termination: Termination) -> TerminationInfo | None:
        """Execute one machine instruction (detail-mode logging),
        honouring the termination conditions (watchdog, iteration limit,
        environment exchange at ITER boundaries).  Returns termination
        info when that instruction ended the run, else ``None``."""

    @abc.abstractmethod
    def current_cycle(self) -> int:
        """The target's current point in time."""

    @abc.abstractmethod
    def capture_state(self, observation: ObservationSpec) -> dict:
        """Log the observable system state (scan elements, memory
        ranges, workload outputs) as a JSON-able dict."""

    @abc.abstractmethod
    def record_trace(self, termination: Termination) -> tuple[TerminationInfo, ReferenceTrace]:
        """Run the loaded workload to termination while recording the
        instruction/memory-access trace (reference-run support for
        trigger resolution and pre-injection analysis)."""

    @abc.abstractmethod
    def install_fault_overlay(self, location: Location, model: FaultModel, seed: int) -> None:
        """Arm a non-transient fault (stuck-at / intermittent) so it
        stays applied while the workload runs."""

    @abc.abstractmethod
    def set_environment(self, env) -> None:
        """Attach an environment simulator (or ``None``) exchanging data
        with the workload at loop-iteration boundaries."""

    # ------------------------------------------------------------------
    # Execution engine (optional)
    # ------------------------------------------------------------------
    def set_fast_path(self, enabled: bool) -> None:
        """Select the target's execution engine, when it has more than
        one.  Simulated targets route plain runs through a fused hot
        loop whose observable behaviour is bit-identical to their
        reference step loop; ``enabled=False`` forces the reference
        loop (the campaign-level ``fast=False`` escape hatch).  Targets
        with a single engine — e.g. real hardware — ignore this."""

    def execution_stats(self) -> dict:
        """Diagnostic counters of the execution engine, surfaced into
        the telemetry registry by the campaign engines.  Simulated
        targets report ``fast_segments`` / ``ref_segments`` (run-loop
        segments executed by each engine) and ``cycles`` (the current
        cycle counter); empty for targets without instrumentation.
        Never part of checkpointed state."""
        return {}

    # ------------------------------------------------------------------
    # Checkpointing (optional; targets that can snapshot their full
    # state set ``supports_checkpoints = True`` and override these)
    # ------------------------------------------------------------------
    def save_state(self) -> object:
        """A full-fidelity snapshot of the target state: everything that
        influences future execution and observation — restoring it must
        be indistinguishable from having simulated to this point.  The
        returned object is opaque to the callers and must not alias live
        target state (later execution must not mutate it)."""
        raise TargetError(
            f"target {self.target_name!r} does not support checkpointing"
        )

    def restore_state(self, state: object) -> None:
        """Restore a snapshot produced by :meth:`save_state` on this
        target, leaving the cached snapshot reusable."""
        raise TargetError(
            f"target {self.target_name!r} does not support checkpointing"
        )


@dataclass(slots=True)
class Framework:
    """A convenience record bundling what a registered target provides —
    used by the CLI and plugin registry to describe targets without
    instantiating them."""

    name: str
    interface_class: type[TargetSystemInterface]
    description: str = ""
    techniques: tuple[str, ...] = field(default_factory=tuple)
