"""Campaign configuration, set-up phase, and experiment-plan generation.

A *campaign* (paper §3.2) bundles: the target system, the technique, the
workload, the fault-injection locations ("chosen from a hierarchical
list"), the fault model, "the points in time the faults should be
injected", the number of experiments, the termination conditions, the
observation selection, and — for infinite-loop workloads — the
environment-simulator configuration.

The set-up phase stores the configuration in the ``CampaignData`` table;
the fault-injection phase reads it back, makes the reference run, and
expands the configuration into a concrete *experiment plan* — a
deterministic (seeded) list of planned faults.  The paper's set-up phase
also supports modifying stored campaigns and *merging* several campaigns
into a new one; see :func:`merge_campaigns`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .errors import ConfigurationError
from .faultmodels import FaultModel, TransientBitFlip, model_from_dict
from .framework import ObservationSpec, Termination
from .locations import KIND_MEMORY, KIND_SCAN, Location, LocationSelection, LocationSpace
from .preinjection import LivenessAnalysis, PreInjectionFilter
from .rng import campaign_rng, experiment_seed
from .triggers import (
    BranchTrigger,
    BreakpointTrigger,
    CallTrigger,
    ClockTrigger,
    DataAccessTrigger,
    ReferenceTrace,
    TimeTrigger,
    Trigger,
    cycles_in_window,
    trigger_from_dict,
)

#: Technique identifiers (must match :mod:`repro.core.plugins`
#: registrations).
TECHNIQUE_SCIFI = "scifi"
TECHNIQUE_SWIFI_PRERUNTIME = "swifi_preruntime"
TECHNIQUE_SWIFI_RUNTIME = "swifi_runtime"
#: Pin-level fault injection (paper §2.1: "fault injection techniques
#: such as SCIFI, SWIFI or pin level fault injection") — injects on the
#: boundary scan chain's pin cells only.
TECHNIQUE_PINLEVEL = "pinlevel"

#: How injection points in time are drawn.
TIME_UNIFORM = "uniform"  # uniform over the injection window
TIME_BRANCH = "branch"  # at randomly chosen executed branches
TIME_CALL = "call"  # at randomly chosen subprogram calls
TIME_DATA_ACCESS = "data_access"  # at randomly chosen accesses of the location
TIME_CLOCK = "clock"  # at random real-time-clock ticks
TIME_TASK_SWITCH = "task_switch"  # at randomly chosen task dispatches

_TIME_STRATEGIES = (
    TIME_UNIFORM,
    TIME_BRANCH,
    TIME_CALL,
    TIME_DATA_ACCESS,
    TIME_CLOCK,
    TIME_TASK_SWITCH,
)

LOGGING_NORMAL = "normal"
LOGGING_DETAIL = "detail"

#: How multi-flip experiments place their flips.
MULTIPLICITY_INDEPENDENT = "independent"  # each flip drawn independently
MULTIPLICITY_ADJACENT = "adjacent"  # one MBU: adjacent bits, same instant


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """Everything the set-up phase stores in ``CampaignData``."""

    name: str
    target: str
    technique: str
    workload: str
    location_patterns: tuple[str, ...]
    num_experiments: int
    termination: Termination
    observation: ObservationSpec
    fault_model: FaultModel = TransientBitFlip()
    #: Bits flipped per experiment ("single or multiple transient
    #: bit-flip faults").
    flips_per_experiment: int = 1
    #: Spatial model for multi-flip experiments: independent flips, or a
    #: multiple-bit upset (adjacent bits of one element, one instant).
    multiplicity_model: str = MULTIPLICITY_INDEPENDENT
    #: Injection-time strategy and window (cycles; ``None`` = whole run).
    time_strategy: str = TIME_UNIFORM
    injection_window: tuple[int, int] | None = None
    clock_period: int = 100  # used by the TIME_CLOCK strategy
    #: Program address of the dispatcher instruction, for the
    #: TIME_TASK_SWITCH strategy ("when task switches occur", §4).
    task_switch_address: int | None = None
    logging_mode: str = LOGGING_NORMAL
    #: Detail mode: log the system state every Nth *executed
    #: instruction* (not every Nth cycle).  The logged ``cycle`` field
    #: is the target's cycle counter at the sample, so on targets where
    #: an instruction advances the counter by more than one cycle the
    #: stride between logged cycles can exceed ``detail_period``.
    detail_period: int = 1
    seed: int = 1
    use_preinjection_analysis: bool = False
    #: Environment-simulator configuration, e.g.
    #: ``{"name": "dc_motor", "params": {...}}``; ``None`` = none.
    environment: dict | None = None

    def __post_init__(self) -> None:
        if self.num_experiments <= 0:
            raise ConfigurationError("a campaign needs at least one experiment")
        if self.flips_per_experiment <= 0:
            raise ConfigurationError("flips_per_experiment must be positive")
        if self.time_strategy not in _TIME_STRATEGIES:
            raise ConfigurationError(f"unknown time strategy {self.time_strategy!r}")
        if self.logging_mode not in (LOGGING_NORMAL, LOGGING_DETAIL):
            raise ConfigurationError(f"unknown logging mode {self.logging_mode!r}")
        if self.detail_period <= 0:
            raise ConfigurationError("detail_period must be positive")
        if self.time_strategy == TIME_TASK_SWITCH and self.task_switch_address is None:
            raise ConfigurationError(
                "the task_switch strategy needs task_switch_address "
                "(the dispatcher instruction's program address)"
            )
        if self.multiplicity_model not in (
            MULTIPLICITY_INDEPENDENT,
            MULTIPLICITY_ADJACENT,
        ):
            raise ConfigurationError(
                f"unknown multiplicity model {self.multiplicity_model!r}"
            )
        if not self.location_patterns:
            raise ConfigurationError("a campaign needs at least one location pattern")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "technique": self.technique,
            "workload": self.workload,
            "location_patterns": list(self.location_patterns),
            "num_experiments": self.num_experiments,
            "termination": self.termination.to_dict(),
            "observation": self.observation.to_dict(),
            "fault_model": self.fault_model.to_dict(),
            "flips_per_experiment": self.flips_per_experiment,
            "multiplicity_model": self.multiplicity_model,
            "time_strategy": self.time_strategy,
            "injection_window": list(self.injection_window) if self.injection_window else None,
            "clock_period": self.clock_period,
            "task_switch_address": self.task_switch_address,
            "logging_mode": self.logging_mode,
            "detail_period": self.detail_period,
            "seed": self.seed,
            "use_preinjection_analysis": self.use_preinjection_analysis,
            "environment": self.environment,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        window = data.get("injection_window")
        return cls(
            name=data["name"],
            target=data["target"],
            technique=data["technique"],
            workload=data["workload"],
            location_patterns=tuple(data["location_patterns"]),
            num_experiments=int(data["num_experiments"]),
            termination=Termination.from_dict(data["termination"]),
            observation=ObservationSpec.from_dict(data["observation"]),
            fault_model=model_from_dict(data["fault_model"]),
            flips_per_experiment=int(data.get("flips_per_experiment", 1)),
            multiplicity_model=data.get("multiplicity_model", MULTIPLICITY_INDEPENDENT),
            time_strategy=data.get("time_strategy", TIME_UNIFORM),
            injection_window=tuple(window) if window else None,
            clock_period=int(data.get("clock_period", 100)),
            task_switch_address=(
                int(data["task_switch_address"])
                if data.get("task_switch_address") is not None
                else None
            ),
            logging_mode=data.get("logging_mode", LOGGING_NORMAL),
            detail_period=int(data.get("detail_period", 1)),
            seed=int(data.get("seed", 1)),
            use_preinjection_analysis=bool(data.get("use_preinjection_analysis", False)),
            environment=data.get("environment"),
        )


@dataclass(frozen=True, slots=True)
class PlannedFault:
    """One fault of one experiment: where, when, and what model."""

    location: Location
    trigger: Trigger
    model: FaultModel

    def to_dict(self) -> dict:
        return {
            "location": self.location.to_dict(),
            "trigger": self.trigger.to_dict(),
            "model": self.model.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlannedFault":
        return cls(
            location=Location.from_dict(data["location"]),
            trigger=trigger_from_dict(data["trigger"]),
            model=model_from_dict(data["model"]),
        )


@dataclass(frozen=True, slots=True)
class ExperimentSpec:
    """One planned experiment of a campaign."""

    name: str
    index: int
    faults: tuple[PlannedFault, ...]
    seed: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "index": self.index,
            "faults": [f.to_dict() for f in self.faults],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        return cls(
            name=data["name"],
            index=int(data["index"]),
            faults=tuple(PlannedFault.from_dict(f) for f in data["faults"]),
            seed=int(data["seed"]),
        )


def experiment_name(campaign: str, index: int) -> str:
    """Unique ``experimentName`` key of experiment ``index``."""
    return f"{campaign}/exp{index:05d}"


class PlanGenerator:
    """Expands a campaign configuration into concrete experiments.

    Needs the reference trace (for trigger resolution, the injection
    window, and — when enabled — the pre-injection liveness analysis)
    and the target's location space.
    """

    def __init__(
        self,
        config: CampaignConfig,
        space: LocationSpace,
        trace: ReferenceTrace,
    ) -> None:
        self.config = config
        self.space = space
        self.trace = trace
        self.selection: LocationSelection = space.select(list(config.location_patterns))
        self._validate_selection_for_technique()
        window = config.injection_window or (0, trace.duration)
        self.window = cycles_in_window(trace, *window)
        self._liveness_filter: PreInjectionFilter | None = None
        if config.use_preinjection_analysis:
            self._liveness_filter = PreInjectionFilter(LivenessAnalysis(trace))

    def _validate_selection_for_technique(self) -> None:
        technique = self.config.technique
        has_scan = bool(self.selection.elements)
        has_memory = bool(self.selection.regions)
        if technique == TECHNIQUE_SWIFI_PRERUNTIME and has_scan:
            raise ConfigurationError(
                "pre-runtime SWIFI injects into the program and data areas "
                "of memory; scan-chain locations need the SCIFI technique"
            )
        if technique == TECHNIQUE_SCIFI and has_memory:
            raise ConfigurationError(
                "SCIFI injects via scan chains; memory locations need a "
                "SWIFI technique"
            )
        if technique == TECHNIQUE_PINLEVEL:
            if has_memory:
                raise ConfigurationError(
                    "pin-level injection reaches pins only, not memory"
                )
            off_chip = [
                e.key for e in self.selection.elements if e.chain != "boundary"
            ]
            if off_chip:
                raise ConfigurationError(
                    "pin-level injection is restricted to the boundary scan "
                    f"chain; not available: {', '.join(off_chip)}"
                )

    # ------------------------------------------------------------------
    def generate(self) -> list[ExperimentSpec]:
        rng = campaign_rng(self.config.seed)
        experiments = []
        for index in range(self.config.num_experiments):
            if (
                self.config.multiplicity_model == MULTIPLICITY_ADJACENT
                and self.config.flips_per_experiment > 1
            ):
                faults = self._plan_adjacent_burst(rng)
            else:
                faults = tuple(
                    self._plan_fault(rng)
                    for _ in range(self.config.flips_per_experiment)
                )
            experiments.append(
                ExperimentSpec(
                    name=experiment_name(self.config.name, index),
                    index=index,
                    faults=faults,
                    seed=experiment_seed(self.config.seed, index),
                )
            )
        return experiments

    def _plan_adjacent_burst(self, rng: np.random.Generator) -> tuple[PlannedFault, ...]:
        """One multiple-bit upset: ``flips_per_experiment`` adjacent
        bits of a single element, all at the same trigger instant
        (wrapping within the element's width for narrow fields)."""
        anchor = self._plan_fault(rng)
        location = anchor.location
        if location.kind == KIND_SCAN:
            width = self.space.element(location.chain, location.element).width
        else:
            region = next(
                r for r in self.selection.regions
                if r.base <= location.address < r.limit
            )
            width = region.word_bits
        faults = []
        for offset in range(self.config.flips_per_experiment):
            bit = (location.bit + offset) % width
            faults.append(
                PlannedFault(
                    location=replace(location, bit=bit),
                    trigger=anchor.trigger,
                    model=anchor.model,
                )
            )
        return tuple(faults)

    def _plan_fault(self, rng: np.random.Generator) -> PlannedFault:
        config = self.config
        if config.technique == TECHNIQUE_SWIFI_PRERUNTIME:
            # Pre-runtime injection happens before the run: the "trigger"
            # is fixed at cycle 0 by definition.
            location = self.selection.sample(rng)
            return PlannedFault(location, TimeTrigger(0), config.fault_model)
        location, trigger = self._sample_location_and_trigger(rng)
        return PlannedFault(location, trigger, config.fault_model)

    def _sample_location_and_trigger(
        self, rng: np.random.Generator
    ) -> tuple[Location, Trigger]:
        config = self.config
        lo, hi = self.window
        strategy = config.time_strategy
        if strategy == TIME_UNIFORM:
            if self._liveness_filter is not None:
                location, cycle = self._liveness_filter.sample(self.selection, self.window, rng)
                return location, TimeTrigger(cycle)
            return self.selection.sample(rng), TimeTrigger(int(rng.integers(lo, hi)))
        if strategy == TIME_CLOCK:
            period = config.clock_period
            first_tick = max(1, -(-lo // period))  # ceil(lo / period)
            last_tick = hi // period
            if last_tick < first_tick:
                raise ConfigurationError(
                    f"no clock tick of period {period} inside window [{lo}, {hi})"
                )
            tick = int(rng.integers(first_tick, last_tick + 1))
            return self.selection.sample(rng), ClockTrigger(period=period, tick=tick)
        if strategy == TIME_BRANCH:
            cycles = [c for c in self.trace.branch_cycles() if lo <= c < hi]
            if not cycles:
                raise ConfigurationError("no branch executions inside the injection window")
            occurrence = self.trace.branch_cycles().index(
                cycles[int(rng.integers(len(cycles)))]
            ) + 1
            return self.selection.sample(rng), BranchTrigger(occurrence=occurrence)
        if strategy == TIME_CALL:
            cycles = [c for c in self.trace.call_cycles() if lo <= c < hi]
            if not cycles:
                raise ConfigurationError("no subprogram calls inside the injection window")
            occurrence = self.trace.call_cycles().index(
                cycles[int(rng.integers(len(cycles)))]
            ) + 1
            return self.selection.sample(rng), CallTrigger(occurrence=occurrence)
        if strategy == TIME_TASK_SWITCH:
            address = config.task_switch_address
            all_cycles = self.trace.pc_cycles(address)
            cycles = [c for c in all_cycles if lo <= c < hi]
            if not cycles:
                raise ConfigurationError(
                    f"no task switches (pc=0x{address:04X}) inside the "
                    f"injection window"
                )
            occurrence = all_cycles.index(cycles[int(rng.integers(len(cycles)))]) + 1
            return self.selection.sample(rng), BreakpointTrigger(
                address=address, occurrence=occurrence
            )
        if strategy == TIME_DATA_ACCESS:
            return self._sample_data_access_trigger(rng, lo, hi)
        raise ConfigurationError(f"unknown time strategy {strategy!r}")  # pragma: no cover

    def _sample_data_access_trigger(
        self, rng: np.random.Generator, lo: int, hi: int
    ) -> tuple[Location, Trigger]:
        """Pick an accessed address and trigger on one of its accesses.

        The injected location is the accessed memory word itself when
        the selection covers memory, otherwise a scan location with the
        access as its (independent) trigger.
        """
        accesses = [
            (cycle, kind, addr)
            for cycle, kind, addr in self.trace.mem_accesses
            if lo <= cycle < hi
        ]
        if not accesses:
            raise ConfigurationError("no data accesses inside the injection window")
        cycle, kind, addr = accesses[int(rng.integers(len(accesses)))]
        if self.selection.regions:
            region = self._region_containing(addr)
            if region is None:
                # The sampled access falls outside every selected region
                # (e.g. a program-area fetch when only the data area is
                # selected): re-draw among the accesses the selection
                # covers, falling back to a scan location when none is.
                in_selection = [
                    access
                    for access in accesses
                    if self._region_containing(access[2]) is not None
                ]
                if not in_selection:
                    if self.selection.elements:
                        scan_only = LocationSelection(
                            elements=self.selection.elements, regions=[]
                        )
                        trigger = self._access_trigger(cycle, kind, addr)
                        return scan_only.sample(rng), trigger
                    raise ConfigurationError(
                        "no data access inside the injection window touches "
                        "a selected memory region"
                    )
                cycle, kind, addr = in_selection[int(rng.integers(len(in_selection)))]
                region = self._region_containing(addr)
            trigger = self._access_trigger(cycle, kind, addr)
            location = Location(
                kind=KIND_MEMORY, address=addr, bit=int(rng.integers(region.word_bits))
            )
            return location, trigger
        return self.selection.sample(rng), self._access_trigger(cycle, kind, addr)

    def _region_containing(self, address: int):
        """The selected memory region containing ``address``, if any."""
        for region in self.selection.regions:
            if region.base <= address < region.limit:
                return region
        return None

    def _access_trigger(self, cycle: int, kind: str, addr: int) -> DataAccessTrigger:
        earlier = sum(
            1
            for c, k, a in self.trace.mem_accesses
            if a == addr and k == kind and c <= cycle
        )
        return DataAccessTrigger(address=addr, access=kind, occurrence=earlier)


def merge_campaigns(
    configs: list[CampaignConfig], new_name: str, seed: int | None = None
) -> CampaignConfig:
    """Merge campaign data from several campaigns into a new one
    (paper §3.2).

    The campaigns must agree on target, technique and workload; the
    merge unions their location patterns and sums their experiment
    counts.  Remaining parameters come from the first campaign.
    """
    if not configs:
        raise ConfigurationError("merge_campaigns needs at least one campaign")
    first = configs[0]
    for other in configs[1:]:
        for attribute in ("target", "technique", "workload"):
            if getattr(other, attribute) != getattr(first, attribute):
                raise ConfigurationError(
                    f"cannot merge campaigns differing in {attribute}: "
                    f"{getattr(first, attribute)!r} vs {getattr(other, attribute)!r}"
                )
    patterns: list[str] = []
    for config in configs:
        for pattern in config.location_patterns:
            if pattern not in patterns:
                patterns.append(pattern)
    return replace(
        first,
        name=new_name,
        location_patterns=tuple(patterns),
        num_experiments=sum(c.num_experiments for c in configs),
        seed=first.seed if seed is None else seed,
    )
