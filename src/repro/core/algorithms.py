"""The fault-injection algorithms (paper Figure 2).

``FaultInjectionAlgorithms`` holds the generic campaign algorithms,
written exclusively against the abstract building blocks of
:class:`repro.core.framework.TargetSystemInterface` — the paper's
central design idea: "By combining different abstract methods we can
define algorithms for fault injection techniques such as SCIFI, SWIFI
or pin level fault injection."

Three techniques are implemented:

``fault_injector_scifi``
    The paper's main algorithm, step for step: read campaign data, make
    a reference run, then per experiment: init test card, load workload,
    write memory, run workload, wait for breakpoint, read scan chain,
    inject fault, write scan chain, wait for termination, read memory,
    read scan chain.
``fault_injector_swifi_preruntime``
    "Faults are injected into the program and data areas of the target
    system before it starts to execute": flip memory-image bits through
    the host link, then run to termination.
``fault_injector_swifi_runtime``
    The future-work runtime SWIFI, realised debugger-style: stop at the
    trigger, corrupt memory or an architecturally visible register, and
    resume.

Each experiment's outcome is logged to the ``LoggedSystemState`` table;
"in normal mode, the system state is logged only when the termination
condition is fulfilled.  In detail mode the system state is logged as
frequently as the target system allows, typically after the execution
of each machine instruction."
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

from ..db import (
    CampaignRecord,
    ExperimentRecord,
    GoofiDatabase,
    ProbeRecord,
    ResourceSampleRecord,
    SpanRecord,
    TargetSystemRecord,
    reference_name,
)
from .campaign import (
    LOGGING_DETAIL,
    TECHNIQUE_PINLEVEL,
    TECHNIQUE_SCIFI,
    TECHNIQUE_SWIFI_PRERUNTIME,
    TECHNIQUE_SWIFI_RUNTIME,
    CampaignConfig,
    ExperimentSpec,
    PlanGenerator,
    PlannedFault,
)
from .checkpoint import (
    DEFAULT_CHECKPOINT_CAPACITY,
    CheckpointCache,
    sort_plan_by_first_injection,
)
from .errors import ConfigurationError, TargetError
from .events import NULL_EVENTS, resolve_events
from .faultmodels import is_transient
from .framework import (
    TargetSystemInterface,
    TerminationInfo,
)
from .liveness import (
    PruneConfig,
    PrunePlan,
    build_prune_plan,
    liveness_map,
    resolve_prune,
)
from .locations import KIND_MEMORY, KIND_SCAN
from .plugins import create_environment, technique_method
from .probes import ProbeConfig, ProbeSession, resolve_probes
from .profiling import ProfileCollector, merge_profile_stats, profile_summary
from .progress import ProgressReporter
from .resources import ResourceConfig, ResourceSampler, resolve_resources
from .telemetry import (
    MODE_METRICS,
    NULL_SPAN,
    NULL_TELEMETRY,
    Telemetry,
    resolve_telemetry,
)
from .triggers import ReferenceTrace

logger = logging.getLogger(__name__)


@dataclass(slots=True)
class CampaignResult:
    """Summary returned by a campaign run (details live in the DB)."""

    campaign_name: str
    experiments_run: int
    experiments_planned: int
    aborted: bool
    elapsed_seconds: float
    #: Checkpoint-cache counters (saves/restores/misses/evictions) when
    #: the run used checkpointing; ``None`` otherwise.
    checkpoint_stats: dict | None = None
    #: Final :class:`~repro.core.telemetry.MetricsRegistry` snapshot when
    #: the run was telemetered; ``None`` otherwise.
    telemetry: dict | None = None
    #: Liveness-pruning summary (planned/pruned/skipped/spot-check
    #: counts and divergences) when the run used ``--prune``; ``None``
    #: otherwise.
    prune: dict | None = None
    #: Aggregated cProfile hotspot summary when the run used
    #: ``--profile``; ``None`` otherwise.
    profile: dict | None = None
    #: Number of resource samples persisted when the run used
    #: ``--resources``; ``None`` otherwise.
    resource_samples: int | None = None


def emit_pruned_events(bus, campaign_name: str, prune_plan, total: int) -> None:
    """One ``experiment_finished`` event per experiment the liveness
    classifier skipped (already logged up front from its synthesised
    row).  Shared by the serial loop and the parallel coordinator, so
    streams are identical for any worker count.  Pruned experiments
    never run: their events carry ``pruned: true`` and a ``null``
    run-progress counter."""
    for record in prune_plan.upfront_records():
        bus.emit(
            "experiment_finished",
            campaign=campaign_name,
            experiment=record.experiment_name,
            outcome=record.state_vector["termination"]["outcome"],
            completed=None,
            total=total,
            elapsed_seconds=None,
            rate=None,
            eta_seconds=None,
            pruned=True,
            spot_check=False,
            worker=0,
        )


class FaultInjectionAlgorithms:
    """Generic fault-injection campaign algorithms.

    The constructor takes the three things every algorithm needs: a
    target-system interface, the GOOFI database, and (optionally) a
    progress reporter for the monitoring/pause/end controls.
    """

    #: Technique → experiment-body method.  One entry per registered
    #: technique; the parallel runner and the detail-mode re-run resolve
    #: their per-experiment runner through this table.
    EXPERIMENT_BODIES = {
        TECHNIQUE_SCIFI: "_run_scifi_experiment",
        TECHNIQUE_PINLEVEL: "_run_scifi_experiment",
        TECHNIQUE_SWIFI_PRERUNTIME: "_run_swifi_preruntime_experiment",
        TECHNIQUE_SWIFI_RUNTIME: "_run_swifi_runtime_experiment",
    }

    def __init__(
        self,
        target: TargetSystemInterface,
        db: GoofiDatabase | None,
        progress: ProgressReporter | None = None,
    ) -> None:
        """``db`` may be ``None`` for experiment-only use (the parallel
        campaign runner's worker processes never touch the database —
        campaign management then raises on the missing connection)."""
        self.target = target
        self.db = db
        self.progress = progress or ProgressReporter()
        #: Filled by :meth:`make_reference_run`.
        self.reference_trace: ReferenceTrace | None = None
        #: Active checkpoint cache.  Set for the duration of a
        #: checkpointed campaign (``run_campaign(checkpoints=True)``)
        #: or directly by a parallel worker; the experiment bodies
        #: consult it to skip re-simulating the fault-free prefix.
        self.checkpoints: CheckpointCache | None = None
        #: LRU capacity used when building the cache (one knob, also
        #: shipped to the parallel workers; the CLI exposes it as
        #: ``--checkpoint-capacity``).
        self.checkpoint_capacity: int = DEFAULT_CHECKPOINT_CAPACITY
        #: Active telemetry handle.  ``NULL_TELEMETRY`` (every operation
        #: a shared no-op) unless ``run_campaign(telemetry=...)`` turned
        #: it on or a parallel worker installed a local instance.
        self.telemetry = NULL_TELEMETRY
        #: Active campaign event bus (:mod:`repro.core.events`).
        #: ``NULL_EVENTS`` unless ``run_campaign(events=...)`` turned it
        #: on; parallel workers never carry a live bus — the coordinator
        #: owns the sinks and emits in deterministic plan order.
        self.events = NULL_EVENTS
        #: Requested probe configuration for the current campaign run
        #: (``run_campaign(probes=...)``); ``None`` when probing is off.
        self.probe_config: ProbeConfig | None = None
        #: Active probe session (golden snapshots + pending summaries).
        #: Set for the duration of a probed campaign, or installed
        #: directly by a parallel worker; the experiment bodies route
        #: their execution segments through it when present.
        self.probes: ProbeSession | None = None
        #: Requested liveness-pruning configuration for the current
        #: campaign run (``run_campaign(prune=...)``); ``None`` when
        #: pruning is off.
        self.prune_config: PruneConfig | None = None
        #: Requested resource-sampling configuration for the current
        #: campaign run (``run_campaign(resources=...)``); ``None``
        #: when resource telemetry is off.
        self.resource_config: ResourceConfig | None = None
        #: Active resource sampler (serial runs and parallel workers
        #: install their own); the flush path drains it.
        self.resources: ResourceSampler | None = None
        #: Whether the current run wraps the experiment loop in
        #: :mod:`cProfile` (``run_campaign(profile=True)``).
        self.profile: bool = False
        #: The reference run's logged record, stashed by
        #: :meth:`make_reference_run` — pruned rows synthesise their
        #: state vector from it.
        self._reference_record: ExperimentRecord | None = None
        #: Config key the cached ``reference_trace`` was recorded under —
        #: guards the detail-rerun fast path against reusing a trace
        #: from a different campaign/workload.
        self._reference_trace_key: tuple | None = None

    # ------------------------------------------------------------------
    # Campaign entry points
    # ------------------------------------------------------------------
    def run_campaign(
        self,
        campaign_name: str,
        resume: bool = False,
        workers: int = 1,
        checkpoints: bool = False,
        fast: bool = True,
        telemetry=None,
        telemetry_jsonl=None,
        probes=None,
        prune=None,
        shared_state: bool = True,
        events=None,
        resources=None,
        profile: bool = False,
    ) -> CampaignResult:
        """Run the campaign's technique-specific algorithm (dispatched
        through the technique registry).

        ``resume=True`` continues an interrupted campaign: already
        logged experiments are kept and skipped (the seeded plan is
        deterministic, so the remaining experiments are exactly the ones
        that would have run).  This is the 'restart' button of the
        paper's progress window surviving a host restart.

        ``workers > 1`` shards the experiment plan across that many
        worker processes (:class:`repro.core.parallel.ParallelCampaignRunner`);
        results are bit-identical to the serial loop.

        ``checkpoints=True`` reuses fault-free prefix state between
        experiments (:mod:`repro.core.checkpoint`): the plan is run in
        first-injection order and each experiment restores the nearest
        cached snapshot instead of re-simulating from cycle 0.  Logged
        rows are bit-identical to a no-checkpoint run; only insertion
        order (never content) may differ.  Ignored on targets without
        ``supports_checkpoints``.

        ``fast=False`` forces the target's reference execution loop
        instead of its fused fast path (a debugging escape hatch; the
        two engines log bit-identical rows).  The choice is applied to
        this session's target and shipped to any parallel workers.

        ``telemetry`` turns on campaign telemetry (see
        :func:`repro.core.telemetry.resolve_telemetry` for the accepted
        values: a mode string, a bool, or a ready
        :class:`~repro.core.telemetry.Telemetry`); ``telemetry_jsonl``
        additionally streams span records and the final snapshot to a
        JSON-lines file.  Telemetry never changes logged rows — it only
        measures the run.

        ``probes`` turns on campaign-scale propagation probes (see
        :func:`repro.core.probes.resolve_probes` for the accepted
        values: ``True``, a probe period in cycles, a dict, or a ready
        :class:`~repro.core.probes.ProbeConfig`).  Every experiment then
        yields a compact propagation summary (``PropagationProbe``
        table; ``goofi analyze --propagation``).  Probing never changes
        logged rows either — probe stops fold into the execution loop
        like breakpoints and the dumps are read-only.

        ``prune`` turns on liveness-based experiment pruning (see
        :func:`repro.core.liveness.resolve_prune`: ``True``, a
        spot-check rate in [0, 1], a dict, or a ready
        :class:`~repro.core.liveness.PruneConfig`).  Experiments whose
        faults provably cannot have an effect are not simulated; their
        rows are synthesised from the reference run and flagged
        ``pruned``, and the spot-check sample re-simulates a seeded
        fraction of them, hard-failing on any divergence.  Incompatible
        with ``probes`` — a pruned experiment is never executed, so its
        propagation summary cannot be observed.

        ``events`` turns on the campaign event stream (see
        :func:`repro.core.events.resolve_events` for the accepted
        values: a destination string such as ``"-"``, a JSONL path, a
        ``.sock``/``udp://`` address, a sink list, or a ready
        :class:`~repro.core.events.EventBus`).  The run then emits
        versioned records for the campaign lifecycle, every finished
        experiment (with prune/spot-check provenance and the rolling
        rate/ETA), telemetry spans, and worker lifecycle — consumed
        live by ``goofi watch`` or recorded for replay.  Events never
        change logged rows; emission happens strictly after a row is
        final.

        ``shared_state`` (parallel runs only) publishes the common
        worker-startup state — reference trace, golden probe snapshots,
        armed initial image — once via ``multiprocessing.shared_memory``
        for zero-copy worker attachment; ``False`` forces the
        serialising fallback (the same content shipped by value).  Rows
        are bit-identical either way.

        ``resources`` turns on worker resource telemetry (see
        :func:`repro.core.resources.resolve_resources`: ``True``, a
        sampling period in seconds, a dict, or a ready
        :class:`~repro.core.resources.ResourceConfig`).  Each worker
        then samples its own CPU time, RSS, and shared-memory footprint
        on that cadence (plus phase boundaries); samples land in the
        ``ResourceSample`` table, stream as ``resource_sample`` events,
        and fold into the telemetry snapshot when telemetry is also on.
        Sampling is read-only observation of the worker process — rows
        are bit-identical with it on or off, and a platform without
        ``/proc`` or ``getrusage`` degrades to no samples, never to a
        failed campaign.

        ``profile=True`` wraps each worker's experiment loop in
        :mod:`cProfile`; the coordinator aggregates the per-worker
        stats and persists a top-N hotspot summary with the campaign
        telemetry snapshot (``goofi stats --profile``).  Implies
        metrics-mode telemetry when none was requested, so the summary
        has a snapshot row to live in.  Purely observational: rows are
        bit-identical profiled or not.
        """
        config = self.read_campaign_data(campaign_name)
        self.target.set_fast_path(fast)
        tele = resolve_telemetry(telemetry, telemetry_jsonl)
        if profile and not tele.enabled:
            # The hotspot summary is persisted with the telemetry
            # snapshot, so profiling needs at least metrics mode.
            tele = Telemetry(MODE_METRICS)
        self.telemetry = tele
        probe_config = resolve_probes(probes)
        if probe_config is not None and not self.target.supports_probes:
            raise ConfigurationError(
                f"target {self.target.target_name!r} does not support "
                f"propagation probes"
            )
        prune_config = resolve_prune(prune)
        if prune_config is not None and probe_config is not None:
            raise ConfigurationError(
                "--prune and --probes cannot be combined: pruned "
                "experiments are never executed, so their propagation "
                "summaries cannot be observed"
            )
        self.probe_config = probe_config
        self.prune_config = prune_config
        self.resource_config = resolve_resources(resources)
        self.profile = bool(profile)
        bus = resolve_events(events)
        # A bus handed in ready-made (e.g. goofi gate, which appends its
        # verdict after the run) stays open for the caller to close.
        owns_bus = bus is not events
        self.events = bus
        try:
            if workers > 1:
                from .parallel import ParallelCampaignRunner

                return ParallelCampaignRunner(self, workers=workers).run(
                    config,
                    resume=resume,
                    checkpoints=checkpoints,
                    fast=fast,
                    shared_state=shared_state,
                )
            method_name = technique_method(config.technique)
            method = getattr(self, method_name, None)
            if method is None:
                raise ConfigurationError(
                    f"technique {config.technique!r} maps to unknown algorithm "
                    f"{method_name!r}"
                )
            return method(campaign_name, resume=resume, checkpoints=checkpoints)
        finally:
            tele.close()
            if owns_bus:
                bus.close()
            self.events = NULL_EVENTS
            self.telemetry = NULL_TELEMETRY
            self.probe_config = None
            self.prune_config = None
            self.resource_config = None
            self.resources = None
            self.profile = False

    def experiment_runner(self, technique: str):
        """The per-experiment body for ``technique`` (bound method taking
        ``(config, spec, trace)`` and returning an
        :class:`~repro.db.models.ExperimentRecord`)."""
        try:
            return getattr(self, self.EXPERIMENT_BODIES[technique])
        except KeyError:
            raise ConfigurationError(
                f"no experiment body for technique {technique!r}"
            ) from None

    def fault_injector_scifi(
        self, campaign_name: str, resume: bool = False, checkpoints: bool = False
    ) -> CampaignResult:
        """The SCIFI algorithm of Figure 2."""
        config = self.read_campaign_data(campaign_name)
        if config.technique != TECHNIQUE_SCIFI:
            raise ConfigurationError(
                f"campaign {campaign_name!r} is configured for "
                f"{config.technique!r}, not SCIFI"
            )
        return self._campaign_loop(
            config, self._run_scifi_experiment, resume=resume, checkpoints=checkpoints
        )

    def fault_injector_pinlevel(
        self, campaign_name: str, resume: bool = False, checkpoints: bool = False
    ) -> CampaignResult:
        """Pin-level fault injection (paper §2.1).

        Built from the same abstract building blocks as SCIFI — the
        read/invert/write cycle simply targets the *boundary* scan
        chain's pin cells, emulating a probe forcing a pin value.  The
        plan generator restricts the location space accordingly; the
        per-experiment body is byte-for-byte the SCIFI inner loop, which
        is exactly the reuse the paper's design argument promises.
        """
        config = self.read_campaign_data(campaign_name)
        if config.technique != TECHNIQUE_PINLEVEL:
            raise ConfigurationError(
                f"campaign {campaign_name!r} is configured for "
                f"{config.technique!r}, not pin-level injection"
            )
        return self._campaign_loop(
            config, self._run_scifi_experiment, resume=resume, checkpoints=checkpoints
        )

    def fault_injector_swifi_preruntime(
        self, campaign_name: str, resume: bool = False, checkpoints: bool = False
    ) -> CampaignResult:
        """Pre-runtime SWIFI: corrupt the memory image, then run.

        Checkpointing is accepted but has nothing to skip here — faults
        land before cycle 0, so there is no fault-free prefix.
        """
        config = self.read_campaign_data(campaign_name)
        if config.technique != TECHNIQUE_SWIFI_PRERUNTIME:
            raise ConfigurationError(
                f"campaign {campaign_name!r} is configured for "
                f"{config.technique!r}, not pre-runtime SWIFI"
            )
        return self._campaign_loop(
            config,
            self._run_swifi_preruntime_experiment,
            resume=resume,
            checkpoints=checkpoints,
        )

    def fault_injector_swifi_runtime(
        self, campaign_name: str, resume: bool = False, checkpoints: bool = False
    ) -> CampaignResult:
        """Runtime SWIFI (future-work extension)."""
        config = self.read_campaign_data(campaign_name)
        if config.technique != TECHNIQUE_SWIFI_RUNTIME:
            raise ConfigurationError(
                f"campaign {campaign_name!r} is configured for "
                f"{config.technique!r}, not runtime SWIFI"
            )
        return self._campaign_loop(
            config,
            self._run_swifi_runtime_experiment,
            resume=resume,
            checkpoints=checkpoints,
        )

    # ------------------------------------------------------------------
    # Shared campaign skeleton
    # ------------------------------------------------------------------
    def read_campaign_data(self, campaign_name: str) -> CampaignConfig:
        """``readCampaignData``: load the configuration from the DB."""
        record = self.db.load_campaign(campaign_name)
        config = CampaignConfig.from_dict(record.config)
        if config.target != self.target.target_name:
            raise ConfigurationError(
                f"campaign {campaign_name!r} targets {config.target!r} but the "
                f"attached interface is {self.target.target_name!r}"
            )
        return config

    def compute_reference_trace(self, config: CampaignConfig):
        """Execute the workload fault-free and record its trace, without
        logging anything.  Parallel workers use this to rebuild the
        (deterministic) trace locally instead of shipping it across the
        process boundary."""
        self._prepare_target(config, faulty_environment=False)
        info, trace = self.target.record_trace(config.termination)
        if info.outcome != "workload_end":
            raise ConfigurationError(
                f"reference run of workload {config.workload!r} did not finish "
                f"cleanly (outcome {info.outcome!r}); fix the campaign's "
                f"termination conditions before injecting faults"
            )
        return info, trace

    def make_reference_run(self, config: CampaignConfig) -> ReferenceTrace:
        """``makeReferenceRun``: execute the workload fault-free, record
        the trace, and log the fault-free state to the database."""
        info, trace = self.compute_reference_trace(config)
        final_state = self.target.capture_state(config.observation)
        state_vector: dict = {"termination": info.to_dict(), "final": final_state}
        if config.logging_mode == LOGGING_DETAIL:
            # Detail mode compares per-instruction states against the
            # reference, so the reference itself needs a stepped run.
            self._prepare_target(config, faulty_environment=False)
            self.target.run_workload()
            _, steps = self._detailed_run(config)
            state_vector["steps"] = steps
        record = ExperimentRecord(
            experiment_name=reference_name(config.name),
            campaign_name=config.name,
            experiment_data={"technique": "reference", "workload": config.workload},
            state_vector=state_vector,
        )
        self.db.replace_experiment(record)
        self.reference_trace = trace
        self._reference_record = record
        self._reference_trace_key = self._trace_cache_key(config)
        return trace

    @staticmethod
    def _trace_cache_key(config: CampaignConfig) -> tuple:
        """Identity of a cached reference trace: every config field the
        trace depends on.  A mismatch only forces a recompute, so a
        conservative key is always safe."""
        return (
            config.target,
            config.workload,
            config.termination.max_cycles,
            config.termination.max_iterations,
            repr(config.environment),
        )

    def _campaign_loop(
        self,
        config: CampaignConfig,
        run_experiment,
        resume: bool = False,
        checkpoints: bool = False,
    ) -> CampaignResult:
        tele = self.telemetry
        sampler: ResourceSampler | None = None
        if self.resource_config is not None:
            # Serial runs sample the one process doing the work; when
            # no backend works the sampler degrades to a no-op rather
            # than failing the campaign.
            sampler = ResourceSampler(self.resource_config, worker=0)
            self.resources = sampler
        if resume:
            already_logged = {
                record.experiment_name
                for record in self.db.iter_experiments(config.name)
            }
        else:
            # A fresh run of a campaign replaces its previously logged
            # results (re-runs with other parameters belong in a new or
            # merged campaign).
            already_logged = set()
            self.db.delete_campaign_experiments(config.name)
        with tele.time("phase.reference"):
            trace = self.make_reference_run(config)
        if sampler is not None:
            sampler.sample("reference")
        space = self.target.location_space()
        with tele.time("phase.plan"):
            plan = PlanGenerator(config, space, trace).generate()
        if sampler is not None:
            sampler.sample("plan")
        if self.probe_config is not None:
            # One extra fault-free pass captures the golden snapshots
            # every experiment's probes diff against.
            with tele.time("phase.golden"):
                self.probes = ProbeSession.create(
                    self.target,
                    lambda: self._prepare_target(config, faulty_environment=False),
                    config.termination,
                    self.probe_config,
                )
                # The golden pass also records per-element liveness —
                # the same summary the pruning classifier reasons from.
                self.probes.golden.liveness = liveness_map(trace)
            if sampler is not None:
                sampler.sample("golden")
        remaining = [spec for spec in plan if spec.name not in already_logged]
        prune_plan: PrunePlan | None = None
        if self.prune_config is not None:
            with tele.time("phase.prune"):
                prune_plan = build_prune_plan(
                    config,
                    trace,
                    space,
                    remaining,
                    self.prune_config,
                    self._reference_record,
                )
                remaining = prune_plan.to_run
                # Synthesised rows of skipped experiments are persisted
                # up front; spot-checked ones wait for their simulation
                # to confirm the prediction.
                upfront = prune_plan.upfront_records()
                for start in range(0, len(upfront), 256):
                    self.db.save_experiments(upfront[start : start + 256])
            logger.info(
                "campaign %r: pruned %d/%d experiments (%d spot-checks)%s",
                config.name,
                len(prune_plan.pruned_specs),
                prune_plan.planned,
                len(prune_plan.spot_checks),
                f" — {prune_plan.disabled_reason}"
                if prune_plan.disabled_reason
                else "",
            )
            if tele.enabled:
                tele.metrics.inc("prune.pruned", len(prune_plan.pruned_specs))
                tele.metrics.inc("prune.skipped", prune_plan.skipped)
                tele.metrics.inc(
                    "prune.spot_checks", len(prune_plan.spot_checks)
                )
        if checkpoints and self.target.supports_checkpoints:
            # First-injection order makes the breakpoint sequence
            # monotone, so every checkpoint taken is at or before all
            # later experiments' first breakpoints.  Row content is
            # per-experiment deterministic; only DB insertion order
            # changes (the rows are keyed by experiment name).
            remaining = sort_plan_by_first_injection(remaining, trace)
            self.checkpoints = CheckpointCache(self.checkpoint_capacity)
        bus = self.events
        if bus.enabled:
            bus.emit(
                "campaign_planned",
                campaign=config.name,
                technique=config.technique,
                workload=config.workload,
                planned=len(plan),
                already_logged=len(already_logged),
                pruned=(
                    len(prune_plan.pruned_specs) if prune_plan is not None else 0
                ),
                to_run=len(remaining),
                workers=1,
                checkpoints=self.checkpoints is not None,
            )
            if prune_plan is not None:
                # Skipped experiments were logged up front from
                # synthesised rows; their events carry the provenance
                # flag and no run-progress counter (they never run).
                emit_pruned_events(bus, config.name, prune_plan, len(remaining))
        progress = self.progress
        progress.start(config.name, len(remaining))
        if bus.enabled:
            bus.emit(
                "campaign_started",
                campaign=config.name,
                total=len(remaining),
                workers=1,
            )
        self.db.set_campaign_status(config.name, "running")
        logger.info(
            "campaign %r: %d experiments to run (%d already logged)%s",
            config.name,
            len(remaining),
            len(already_logged),
            ", checkpointing" if self.checkpoints is not None else "",
        )
        completed = 0
        aborted = False
        failed = False
        checkpoint_stats: dict | None = None
        snapshot: dict | None = None
        profile_data: dict | None = None
        pending: list[ExperimentRecord] = []
        collector = ProfileCollector() if self.profile else None
        try:
            if collector is not None:
                collector.start()
            for spec in remaining:
                if progress.abort_requested:
                    aborted = True
                    break
                record = run_experiment(config, spec, trace)
                spot_checked = (
                    prune_plan is not None and spec.name in prune_plan.spot_checks
                )
                if spot_checked:
                    # Hard-fails with PruneDivergence on mismatch; the
                    # confirmed synthesised row (pruned flag set) is
                    # what gets logged.
                    record = prune_plan.verify_spot_check(spec.name, record)
                pending.append(record)
                if len(pending) >= 64:
                    self._flush_batch(config.name, pending)
                    pending = []
                completed += 1
                if sampler is not None:
                    sampler.maybe_sample()
                outcome = record.state_vector["termination"]["outcome"]
                progress_event = progress.experiment_done(spec.name, outcome)
                if bus.enabled:
                    bus.experiment_finished(
                        progress_event,
                        pruned=record.pruned,
                        spot_check=spot_checked,
                    )
        except BaseException:
            failed = True
            raise
        finally:
            if collector is not None:
                collector.stop()
                profile_data = profile_summary(
                    merge_profile_stats([collector.stats_payload()]), workers=1
                )
            if sampler is not None:
                sampler.sample("finish")
            if self.checkpoints is not None:
                checkpoint_stats = self.checkpoints.stats.to_dict()
                self.checkpoints = None
            # A crashing experiment must not lose the batched records
            # accumulated before it, nor leave the campaign stuck at
            # "running" — flush and mark aborted before propagating.
            try:
                if (
                    pending
                    or (self.probes is not None and self.probes.has_pending)
                    or (sampler is not None and sampler.pending)
                ):
                    self._flush_batch(config.name, pending)
            except Exception:
                if not failed:
                    raise
            finally:
                self.probes = None
                self.resources = None
            progress.finish()
            self.db.set_campaign_status(
                config.name, "aborted" if (aborted or failed) else "completed"
            )
            logger.info(
                "campaign %r %s: %d/%d experiments in %.1fs",
                config.name,
                "aborted" if (aborted or failed) else "completed",
                completed,
                len(remaining),
                progress.elapsed_seconds,
            )
            if bus.enabled:
                bus.emit(
                    "campaign_aborted"
                    if (aborted or failed)
                    else "campaign_finished",
                    campaign=config.name,
                    completed=completed,
                    total=len(remaining),
                    elapsed_seconds=round(progress.elapsed_seconds, 6),
                )
            if tele.enabled and not failed:
                if sampler is not None:
                    sampler.fold_into(tele.metrics)
                snapshot = self._finish_telemetry(
                    config.name, checkpoint_stats, profile=profile_data
                )
        return CampaignResult(
            campaign_name=config.name,
            experiments_run=completed,
            experiments_planned=len(remaining),
            aborted=aborted,
            elapsed_seconds=progress.elapsed_seconds,
            checkpoint_stats=checkpoint_stats,
            telemetry=snapshot,
            prune=prune_plan.report() if prune_plan is not None else None,
            profile=profile_data,
            resource_samples=(
                sampler.samples_taken if sampler is not None else None
            ),
        )

    def _flush_batch(
        self, campaign_name: str, records: list[ExperimentRecord]
    ) -> None:
        """Persist one batch of experiment rows — plus any span records
        and probe summaries drained since the last flush — timing the
        write when telemetry is on."""
        tele = self.telemetry
        probe_records = (
            [
                ProbeRecord(
                    experiment_name=payload["experiment"],
                    campaign_name=campaign_name,
                    probe=payload,
                )
                for payload in self.probes.drain()
            ]
            if self.probes is not None
            else []
        )
        resource_records: list[ResourceSampleRecord] = []
        if self.resources is not None:
            samples = self.resources.drain()
            if self.events.enabled:
                for sample in samples:
                    self.events.emit(
                        "resource_sample",
                        campaign=campaign_name,
                        worker=sample["worker"],
                        sample=sample,
                    )
            resource_records = [
                ResourceSampleRecord(
                    campaign_name=campaign_name,
                    sample=sample,
                    worker=sample["worker"],
                )
                for sample in samples
            ]
        if not tele.enabled:
            if records:
                self.db.save_experiments(records)
            self.db.save_probes(probe_records)
            self.db.save_resource_samples(resource_records)
            return
        spans = tele.drain_spans()
        for span in spans:
            # Lane annotation for the trace export; parallel runs tag
            # the worker id instead.
            span.setdefault("worker", 0)
        if self.events.enabled:
            # Phase-span events reuse the telemetry record verbatim as
            # their payload — the stream and the ExperimentSpan table
            # speak the same dialect.
            for span in spans:
                self.events.emit(
                    "span",
                    campaign=campaign_name,
                    worker=span["worker"],
                    span=span,
                )
        started = time.perf_counter()
        if records:
            self.db.save_experiments(records)
        self.db.save_probes(probe_records)
        self.db.save_resource_samples(resource_records)
        if spans:
            self.db.save_spans(
                [
                    SpanRecord(
                        experiment_name=span["experiment"],
                        campaign_name=campaign_name,
                        span=span,
                    )
                    for span in spans
                ]
            )
        elapsed = time.perf_counter() - started
        metrics = tele.metrics
        metrics.add_time("phase.db_write", elapsed)
        metrics.observe("db.batch_seconds", elapsed)
        metrics.inc("db.rows", len(records))
        metrics.inc("db.batches")

    def _finish_telemetry(
        self,
        campaign_name: str,
        checkpoint_stats: dict | None = None,
        profile: dict | None = None,
    ) -> dict:
        """Close out a telemetered campaign: fold the execution-engine
        and checkpoint-cache counters into the registry, write the
        final snapshot to the database (and the JSONL sink, when one is
        configured), and return it.  A ``--profile`` run's aggregated
        hotspot summary rides along in the persisted snapshot under the
        ``profile`` key."""
        tele = self.telemetry
        metrics = tele.metrics
        for key, value in self.target.execution_stats().items():
            if key == "cycles":
                continue  # point-in-time, not a counter — summing it lies
            metrics.inc(f"engine.{key}", value)
        if checkpoint_stats:
            for key, value in checkpoint_stats.items():
                metrics.inc(f"checkpoint.cache.{key}", value)
        metrics.gauges.setdefault("workers", 1)
        metrics.set_gauge("elapsed_seconds", self.progress.elapsed_seconds)
        snapshot = tele.write_snapshot()
        if profile is not None:
            snapshot["profile"] = profile
        self.db.save_campaign_telemetry(campaign_name, snapshot)
        logger.debug(
            "campaign %r: telemetry snapshot saved (%d counters, %d timers)",
            campaign_name,
            len(snapshot["counters"]),
            len(snapshot["timers"]),
        )
        return snapshot

    # ------------------------------------------------------------------
    # Experiment bodies
    # ------------------------------------------------------------------
    def _prepare_target(
        self, config: CampaignConfig, faulty_environment: bool = True
    ) -> None:
        """initTestCard + loadWorkload + environment attachment — the
        common preamble of every experiment and of the reference run.

        ``faulty_environment`` controls whether the campaign's declared
        environment-boundary faults (``environment["faults"]``) are
        armed: experiments pass True, while reference runs and golden
        probe passes pass False so classification always compares
        against a clean baseline.  The environment (wrapper and RNG
        stream included) is recreated here per experiment, which keeps
        rows deterministic regardless of worker count.
        """
        target = self.target
        target.init_test_card()
        environment = None
        if config.environment is not None:
            environment = create_environment(
                config.environment["name"], config.environment.get("params")
            )
            faults = config.environment.get("faults")
            if faulty_environment and faults is not None:
                from ..workloads.envsim import wrap_environment

                environment = wrap_environment(environment, faults)
        target.set_environment(environment)
        target.load_workload(config.workload)

    def _arm_target(self, config: CampaignConfig, schedule, span=NULL_SPAN) -> None:
        """Bring the target to the armed, fault-free state every
        breakpoint-driven experiment starts from: restore the nearest
        checkpoint at or before the first injection when one is cached,
        else do the full reset-and-run preamble."""
        cache = self.checkpoints
        if cache is not None and schedule:
            checkpoint = cache.nearest(schedule[0][0])
            if checkpoint is not None:
                with span.phase("restore"):
                    self.target.restore_state(checkpoint.state)
                span.add("checkpoint.restores")
                return
            span.add("checkpoint.misses")
        with span.phase("setup"):
            self._prepare_target(config)
            self.target.run_workload()

    def _save_checkpoint(self, cycle: int, span=NULL_SPAN) -> None:
        """Snapshot the target at an experiment's *first* breakpoint —
        guaranteed fault-free, since nothing has been injected yet."""
        cache = self.checkpoints
        if cache is not None and not cache.has(cycle):
            cache.save(cycle, self.target.save_state())
            span.add("checkpoint.saves")

    def _run_scifi_experiment(
        self, config: CampaignConfig, spec: ExperimentSpec, trace: ReferenceTrace
    ) -> ExperimentRecord:
        """One SCIFI experiment: the inner loop of Figure 2."""
        target = self.target
        span = self.telemetry.span(spec.name)
        schedule = self._injection_schedule(spec, trace)
        probe = self._observe(spec, schedule)
        self._arm_target(config, schedule, span)
        armed_cycle = 0 if span is NULL_SPAN else target.current_cycle()

        applied: list[dict] = []
        ended_early: TerminationInfo | None = None
        for position, (cycle, fault) in enumerate(schedule):
            with span.phase("execution"):
                if probe is None:
                    ended_early = target.wait_for_breakpoint(cycle)
                else:
                    ended_early = probe.run_to_breakpoint(target, cycle)
            if position == 0 and ended_early is None:
                self._save_checkpoint(cycle, span)
            if ended_early is not None:
                applied.append(self._fault_entry(fault, cycle, applied_flag=False))
                continue
            with span.phase("injection"):
                self._apply_scan_fault(fault, cycle, spec.seed)
            span.add("injections")
            applied.append(self._fault_entry(fault, cycle, applied_flag=True))

        return self._finish_experiment(
            config, spec, applied, ended_early, span, armed_cycle, probe
        )

    def _run_swifi_preruntime_experiment(
        self, config: CampaignConfig, spec: ExperimentSpec, trace: ReferenceTrace
    ) -> ExperimentRecord:
        """One pre-runtime SWIFI experiment: corrupt the image, run."""
        target = self.target
        span = self.telemetry.span(spec.name)
        with span.phase("setup"):
            self._prepare_target(config)
        applied: list[dict] = []
        with span.phase("injection"):
            for fault in spec.faults:
                location = fault.location
                if location.kind != KIND_MEMORY:
                    raise ConfigurationError(
                        f"pre-runtime SWIFI cannot inject into {location.label()}"
                    )
                word = target.read_memory(location.address, 1)[0]
                target.write_memory(location.address, [word ^ (1 << location.bit)])
                applied.append(self._fault_entry(fault, 0, applied_flag=True))
        span.add("injections", len(applied))
        target.run_workload()
        armed_cycle = 0 if span is NULL_SPAN else target.current_cycle()
        probe = self._observe(spec, schedule=[])
        return self._finish_experiment(
            config, spec, applied, None, span, armed_cycle, probe
        )

    def _run_swifi_runtime_experiment(
        self, config: CampaignConfig, spec: ExperimentSpec, trace: ReferenceTrace
    ) -> ExperimentRecord:
        """One runtime SWIFI experiment: stop at the trigger and corrupt
        memory (or an architecturally visible register) via the host
        debugger link, then resume."""
        target = self.target
        span = self.telemetry.span(spec.name)
        schedule = self._injection_schedule(spec, trace)
        probe = self._observe(spec, schedule)
        self._arm_target(config, schedule, span)
        armed_cycle = 0 if span is NULL_SPAN else target.current_cycle()

        applied: list[dict] = []
        ended_early: TerminationInfo | None = None
        for position, (cycle, fault) in enumerate(schedule):
            with span.phase("execution"):
                if probe is None:
                    ended_early = target.wait_for_breakpoint(cycle)
                else:
                    ended_early = probe.run_to_breakpoint(target, cycle)
            if position == 0 and ended_early is None:
                self._save_checkpoint(cycle, span)
            if ended_early is not None:
                applied.append(self._fault_entry(fault, cycle, applied_flag=False))
                continue
            with span.phase("injection"):
                location = fault.location
                if location.kind == KIND_MEMORY:
                    word = target.read_memory(location.address, 1)[0]
                    target.write_memory(
                        location.address, [word ^ (1 << location.bit)]
                    )
                elif location.element.startswith("regs."):
                    self._apply_scan_fault(fault, cycle, spec.seed)
                else:
                    raise ConfigurationError(
                        f"runtime SWIFI reaches memory and registers only, "
                        f"not {location.label()}"
                    )
            span.add("injections")
            applied.append(self._fault_entry(fault, cycle, applied_flag=True))

        return self._finish_experiment(
            config, spec, applied, ended_early, span, armed_cycle, probe
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _observe(self, spec: ExperimentSpec, schedule):
        """An :class:`~repro.core.probes.ExperimentProbe` for this
        experiment when a probe session is active, else ``None``.  The
        first injection cycle anchors the probe schedule (probes sample
        strictly after it)."""
        probes = self.probes
        if probes is None:
            return None
        first_injection = schedule[0][0] if schedule else 0
        return probes.observe(spec.name, spec.index, first_injection)
    @staticmethod
    def _injection_schedule(
        spec: ExperimentSpec, trace: ReferenceTrace
    ) -> list[tuple[int, PlannedFault]]:
        """Resolve every fault's trigger against the reference trace and
        order the injections by time."""
        schedule = [(fault.trigger.resolve(trace), fault) for fault in spec.faults]
        schedule.sort(key=lambda item: item[0])
        return schedule

    def _apply_scan_fault(self, fault: PlannedFault, cycle: int, seed: int) -> None:
        """readScanChain / injectFault / writeScanChain for transients;
        overlay installation for permanent and intermittent models."""
        location = fault.location
        if location.kind != KIND_SCAN:
            raise TargetError(f"scan injection got {location.label()}")
        if is_transient(fault.model):
            self.target.read_scan_chain(location.chain)
            self.target.inject_fault(location)
            self.target.write_scan_chain(location.chain)
        else:
            self.target.install_fault_overlay(location, fault.model, seed)

    @staticmethod
    def _fault_entry(fault: PlannedFault, cycle: int, applied_flag: bool) -> dict:
        entry = fault.to_dict()
        entry["injection_cycle"] = cycle
        entry["applied"] = applied_flag
        return entry

    def _finish_experiment(
        self,
        config: CampaignConfig,
        spec: ExperimentSpec,
        applied: list[dict],
        ended_early: TerminationInfo | None,
        span=NULL_SPAN,
        armed_cycle: int = 0,
        probe=None,
    ) -> ExperimentRecord:
        """waitForTermination + readMemory + readScanChain: run to the
        end and log the observed state."""
        if ended_early is not None:
            info = ended_early
            steps: list[dict] | None = None
        elif config.logging_mode == LOGGING_DETAIL:
            # Detail mode already observes every instruction; probes
            # sample only in the breakpoint segments before it.
            with span.phase("execution"):
                info, steps = self._detailed_run(config)
        else:
            with span.phase("execution"):
                if probe is None:
                    info = self.target.wait_for_termination(config.termination)
                else:
                    info = probe.run_to_termination(
                        self.target, config.termination
                    )
            steps = None
        if probe is not None:
            probe.finish(info, applied)
        with span.phase("readout"):
            final_state = self.target.capture_state(config.observation)
        state_vector: dict = {"termination": info.to_dict(), "final": final_state}
        if steps is not None:
            state_vector["steps"] = steps
        if span is not NULL_SPAN:
            # Cycles simulated by this experiment (after arming) — a
            # deterministic work measure: serial and parallel runs of
            # the same plan total the same count.
            span.add("instructions", self.target.current_cycle() - armed_cycle)
        span.finish(info.outcome)
        return ExperimentRecord(
            experiment_name=spec.name,
            campaign_name=config.name,
            experiment_data={
                "technique": config.technique,
                "index": spec.index,
                "seed": spec.seed,
                "faults": applied,
            },
            state_vector=state_vector,
        )

    def _detailed_run(self, config: CampaignConfig) -> tuple[TerminationInfo, list[dict]]:
        """Detail mode: single-step to termination, logging the system
        state every ``detail_period`` instructions."""
        target = self.target
        steps: list[dict] = []
        period = config.detail_period
        executed = 0
        while True:
            info = target.single_step(config.termination)
            executed += 1
            if executed % period == 0 or info is not None:
                steps.append(
                    {
                        "cycle": target.current_cycle(),
                        "state": target.capture_state(config.observation),
                    }
                )
            if info is not None:
                return info, steps

    # ------------------------------------------------------------------
    # Re-run support (parentExperiment workflow)
    # ------------------------------------------------------------------
    def rerun_experiment_detailed(
        self, experiment_name_to_rerun: str, new_experiment_name: str | None = None
    ) -> ExperimentRecord:
        """Re-run a logged experiment in detail mode, logging the state
        after each machine instruction, and store it with
        ``parentExperiment`` pointing at the original — the paper's
        E1/E2 investigation workflow (§2.3).
        """
        parent = self.db.load_experiment(experiment_name_to_rerun)
        config = self.read_campaign_data(parent.campaign_name)
        detail_config = CampaignConfig.from_dict(
            {**config.to_dict(), "logging_mode": LOGGING_DETAIL, "detail_period": 1}
        )
        technique = parent.experiment_data["technique"]
        if technique == "reference":
            # Re-running the fault-free reference in detail mode gives
            # the per-instruction baseline that propagation analysis
            # diffs faulty re-runs against.
            technique = config.technique
            faults = []
        else:
            faults = [
                PlannedFault.from_dict(entry)
                for entry in parent.experiment_data["faults"]
            ]
        spec = ExperimentSpec(
            name=new_experiment_name or f"{experiment_name_to_rerun}/detail",
            index=int(parent.experiment_data.get("index", 0)),
            faults=tuple(faults),
            seed=int(parent.experiment_data.get("seed", detail_config.seed)),
        )
        # Reuse the cached reference trace only when it was recorded
        # under a config with the same trace-relevant fields — a stale
        # trace from another campaign/workload would silently resolve
        # triggers against the wrong execution.
        key = self._trace_cache_key(detail_config)
        trace = self.reference_trace if self._reference_trace_key == key else None
        if trace is None:
            self._prepare_target(detail_config, faulty_environment=False)
            _, trace = self.target.record_trace(detail_config.termination)
            self.reference_trace = trace
            self._reference_trace_key = key
        try:
            runner = self.experiment_runner(technique)
        except ConfigurationError:
            raise ConfigurationError(f"cannot re-run technique {technique!r}") from None
        record = runner(detail_config, spec, trace)
        record = ExperimentRecord(
            experiment_name=spec.name,
            campaign_name=record.campaign_name,
            experiment_data=record.experiment_data,
            state_vector=record.state_vector,
            parent_experiment=parent.experiment_name,
        )
        self.db.save_experiment(record)
        return record


def register_target_system(db: GoofiDatabase, target: TargetSystemInterface) -> None:
    """Configuration phase: store the target's description in
    ``TargetSystemData`` (what the paper's Figure 5 GUI does)."""
    db.save_target(
        TargetSystemRecord(
            target_name=target.target_name,
            test_card_name=target.test_card_name,
            config=target.describe(),
        )
    )


def store_campaign(db: GoofiDatabase, config: CampaignConfig) -> None:
    """Set-up phase: store a campaign configuration in ``CampaignData``."""
    db.save_campaign(
        CampaignRecord(
            campaign_name=config.name,
            target_name=config.target,
            test_card_name="",
            config=config.to_dict(),
        )
    )
