"""Worker resource telemetry for the campaign observatory.

GOOFI campaigns are meant to run as a service: many campaigns multiplexed
onto one worker pool.  Scheduling them sensibly requires knowing what each
campaign actually costs, so this module samples per-process CPU time,
resident set size, and shared-memory footprint on a cadence inside every
worker (and at phase boundaries in the coordinator).

Two backends, one record shape:

``procfs``
    Reads ``/proc/self/stat`` (utime/stime in clock ticks) and
    ``/proc/self/statm`` (resident and shared pages).  Preferred on Linux
    because it exposes the shared-segment footprint of the PR-8
    shared-memory golden state.

``getrusage``
    Falls back to :func:`resource.getrusage` where procfs is unavailable
    (or mid-run, if a read starts failing).  ``ru_maxrss`` is a high-water
    mark rather than an instantaneous RSS and no shared-segment figure
    exists, so ``shm_bytes`` is ``None`` — but the record keys are
    identical, which downstream consumers (the ``ResourceSample`` table,
    the ``resource_sample`` event kind, and ``goofi report``) rely on.

Sampling is strictly observational: samples never touch experiment rows,
and a sampler whose backends are both unavailable degrades to a no-op
rather than failing the campaign.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from .errors import ConfigurationError

try:  # pragma: no cover - the resource module is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

#: Default seconds between cadence samples inside the experiment loop.
DEFAULT_RESOURCE_PERIOD = 0.25

#: Every sample record carries exactly these keys, regardless of backend.
RESOURCE_SAMPLE_KEYS = (
    "worker",
    "seq",
    "source",
    "phase",
    "uptime_seconds",
    "cpu_user_seconds",
    "cpu_system_seconds",
    "rss_bytes",
    "shm_bytes",
)

#: ``worker`` value used for samples taken by the parallel coordinator.
COORDINATOR_WORKER = -1


@dataclass(frozen=True, slots=True)
class ResourceConfig:
    """Validated resource-sampling settings, picklable across workers."""

    period_seconds: float = DEFAULT_RESOURCE_PERIOD

    def __post_init__(self) -> None:
        if not (isinstance(self.period_seconds, (int, float))
                and self.period_seconds > 0):
            raise ConfigurationError(
                "resource sampling period must be a positive number, got "
                f"{self.period_seconds!r}"
            )

    def to_dict(self) -> dict:
        return {"period_seconds": float(self.period_seconds)}

    @classmethod
    def from_dict(cls, payload: dict) -> "ResourceConfig":
        return cls(period_seconds=payload.get(
            "period_seconds", DEFAULT_RESOURCE_PERIOD))


def resolve_resources(value) -> ResourceConfig | None:
    """Normalise the ``resources=`` campaign knob.

    Accepts ``None``/``False`` (off), ``True`` (defaults), a positive
    number (cadence in seconds), a dict of :class:`ResourceConfig`
    fields, or a ready-made config.
    """
    if value is None or value is False:
        return None
    if isinstance(value, ResourceConfig):
        return value
    if value is True:
        return ResourceConfig()
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return ResourceConfig(period_seconds=float(value))
    if isinstance(value, dict):
        try:
            return ResourceConfig(**value)
        except TypeError as exc:
            raise ConfigurationError(f"bad resources settings: {exc}") from exc
    raise ConfigurationError(
        "resources must be None, a bool, a sampling period in seconds, "
        f"or a ResourceConfig — got {value!r}"
    )


class ResourceSampler:
    """Samples one process's CPU/RSS/shared-memory usage over time.

    Each worker owns its own sampler (the record's ``worker`` field says
    whose process the numbers describe; ``COORDINATOR_WORKER`` marks the
    parallel coordinator).  Samples accumulate in :attr:`pending` and are
    drained by whoever writes them to the database or the event bus,
    mirroring the span/probe collection pattern.
    """

    __slots__ = (
        "config", "worker", "pending", "samples_taken",
        "max_rss_bytes", "max_shm_bytes", "cpu_user_seconds",
        "cpu_system_seconds", "_proc_root", "_source", "_seq",
        "_started", "_last_sample", "_page_size", "_ticks",
    )

    def __init__(self, config: ResourceConfig | None = None, *,
                 worker: int = 0, proc_root: str | os.PathLike = "/proc/self"):
        self.config = config or ResourceConfig()
        self.worker = worker
        self.pending: list[dict] = []
        self.samples_taken = 0
        self.max_rss_bytes = 0
        self.max_shm_bytes = 0
        self.cpu_user_seconds = 0.0
        self.cpu_system_seconds = 0.0
        self._proc_root = Path(proc_root)
        self._seq = 0
        self._started = time.monotonic()
        self._last_sample = float("-inf")
        try:
            self._page_size = os.sysconf("SC_PAGE_SIZE")
        except (AttributeError, OSError, ValueError):
            self._page_size = 4096
        try:
            self._ticks = os.sysconf("SC_CLK_TCK") or 100
        except (AttributeError, OSError, ValueError):
            self._ticks = 100
        self._source = self._probe_backend()

    @property
    def available(self) -> bool:
        """Whether any backend works; when False, sampling is a no-op."""
        return self._source is not None

    @property
    def source(self) -> str | None:
        return self._source

    def _probe_backend(self) -> str | None:
        if self._read_procfs() is not None:
            return "procfs"
        if self._read_getrusage() is not None:
            return "getrusage"
        return None

    def _read_procfs(self) -> tuple[float, float, int, int] | None:
        try:
            stat_text = (self._proc_root / "stat").read_text()
            statm_text = (self._proc_root / "statm").read_text()
            # comm can contain spaces/parens; fields resume after the
            # last ')'.  utime/stime are fields 14/15 (1-based), i.e.
            # offsets 11/12 after the comm.
            fields = stat_text.rsplit(")", 1)[1].split()
            utime = int(fields[11]) / self._ticks
            stime = int(fields[12]) / self._ticks
            statm = statm_text.split()
            rss = int(statm[1]) * self._page_size
            shared = int(statm[2]) * self._page_size
        except (OSError, IndexError, ValueError):
            return None
        return utime, stime, rss, shared

    def _read_getrusage(self) -> tuple[float, float, int, None] | None:
        if _resource is None:
            return None
        try:
            usage = _resource.getrusage(_resource.RUSAGE_SELF)
        except (OSError, ValueError):
            return None
        # ru_maxrss is kilobytes on Linux (bytes on macOS; close enough
        # for a high-water mark on a platform where procfs wins anyway).
        return usage.ru_utime, usage.ru_stime, int(usage.ru_maxrss) * 1024, None

    def _read(self) -> tuple | None:
        if self._source == "procfs":
            reading = self._read_procfs()
            if reading is not None:
                return reading
            # procfs went away mid-run; degrade rather than fail.
            self._source = "getrusage" if self._read_getrusage() else None
        if self._source == "getrusage":
            reading = self._read_getrusage()
            if reading is not None:
                return reading
            self._source = None
        return None

    def sample(self, phase: str | None = None) -> dict | None:
        """Take one sample now; returns the record, or None if unavailable."""
        if self._source is None:
            return None
        reading = self._read()
        if reading is None:
            return None
        user, system, rss, shared = reading
        now = time.monotonic()
        record = {
            "worker": self.worker,
            "seq": self._seq,
            "source": self._source,
            "phase": phase,
            "uptime_seconds": round(now - self._started, 6),
            "cpu_user_seconds": round(user, 6),
            "cpu_system_seconds": round(system, 6),
            "rss_bytes": rss,
            "shm_bytes": shared,
        }
        self._seq += 1
        self.samples_taken += 1
        self._last_sample = now
        self.cpu_user_seconds = user
        self.cpu_system_seconds = system
        self.max_rss_bytes = max(self.max_rss_bytes, rss)
        if shared is not None:
            self.max_shm_bytes = max(self.max_shm_bytes, shared)
        self.pending.append(record)
        return record

    def maybe_sample(self) -> dict | None:
        """Take a cadence sample if ``period_seconds`` have elapsed."""
        if self._source is None:
            return None
        if time.monotonic() - self._last_sample < self.config.period_seconds:
            return None
        return self.sample()

    def drain(self) -> list[dict]:
        """Hand off pending samples (and forget them locally)."""
        pending, self.pending = self.pending, []
        return pending

    def fold_into(self, metrics) -> None:
        """Merge this sampler's totals into a telemetry registry.

        Counters sum across workers (total campaign CPU), gauges merge by
        max (peak footprint anywhere in the pool) — exactly the registry's
        merge semantics, so per-worker folds aggregate correctly at the
        coordinator.
        """
        if not self.samples_taken:
            return
        metrics.inc("resources.samples", self.samples_taken)
        metrics.inc("resources.cpu_user_seconds",
                    round(self.cpu_user_seconds, 6))
        metrics.inc("resources.cpu_system_seconds",
                    round(self.cpu_system_seconds, 6))
        metrics.set_gauge("resources.max_rss_bytes", self.max_rss_bytes)
        if self.max_shm_bytes:
            metrics.set_gauge("resources.max_shm_bytes", self.max_shm_bytes)
