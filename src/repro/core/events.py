"""Campaign event stream: versioned, JSON-serialisable run records.

The paper's progress window (Figure 7) is a *live* view of a running
campaign; everything else in this reproduction has been post-mortem
(``goofi stats`` / ``goofi analyze`` read the database after the fact).
This module is the live layer: an :class:`EventBus` the campaign
engines emit structured records into, with pluggable sinks — a JSONL
file for recording, stdout for piping, and local unix-domain/UDP
datagram sockets for ``goofi watch`` to attach to.  It is also the
wire format the ROADMAP's ``goofi serve`` will put on the network.

Every record is a flat JSON object with four envelope fields::

    {"v": 1, "seq": 17, "ts": 1754550000.123456, "kind": "...", ...}

``v`` is the schema version (bump on incompatible changes), ``seq`` a
per-run monotonically increasing counter (gap-free, so a reader can
detect datagram loss), ``ts`` a wall-clock unix timestamp, and ``kind``
one of the :data:`EVENT_KINDS` below.  Everything after the envelope is
kind-specific payload; phase-span events reuse the telemetry span
record (:class:`repro.core.telemetry.ExperimentSpan`) verbatim as their
``span`` payload, so the stream and the ``ExperimentSpan`` table speak
the same dialect.

Emission must never influence results: the campaign engines emit
*after* an experiment's row is final, sinks never feed anything back,
and the disabled path (:data:`NULL_EVENTS`) is a shared null object
whose ``enabled`` flag the engines check before building payloads — the
events-off cost is one attribute read per call site, mirroring
:data:`repro.core.telemetry.NULL_TELEMETRY`.
"""

from __future__ import annotations

import json
import logging
import socket
import sys
import time
from pathlib import Path

from .errors import ConfigurationError

logger = logging.getLogger(__name__)

#: Version of the event record schema (the ``v`` envelope field).
EVENT_SCHEMA_VERSION = 1

#: Every record kind the campaign engines emit.
EVENT_KINDS = (
    "campaign_planned",     # plan generated (planned/pruned/to-run counts)
    "campaign_started",     # experiments about to run (total, workers)
    "experiment_finished",  # one experiment logged (outcome, progress, provenance)
    "span",                 # one telemetry span record (PR-4 payload, verbatim)
    "worker_started",       # a parallel worker process launched
    "worker_done",          # a parallel worker drained its shard cleanly
    "worker_failed",        # a parallel worker crashed or reported an error
    "campaign_finished",    # the run completed
    "campaign_aborted",     # the run was aborted (end request or failure)
    "gate_verdict",         # a dependability-gate verdict (goofi gate --events)
    "resource_sample",      # one worker CPU/RSS/shm sample (additive in v1:
                            # readers must skip unknown kinds, not fail)
)

#: Largest datagram we will send to a socket sink.  Span events for
#: detail-mode experiments can exceed typical datagram limits; oversized
#: records are dropped (with a debug log) rather than failing the run.
_MAX_DATAGRAM = 60_000

#: One shared compact encoder: the bus serialises each record exactly
#: once (sinks receive the encoded line alongside the dict), and the
#: envelope-first literal construction keeps the field order
#: deterministic without paying for ``sort_keys`` per event.
_encode = json.JSONEncoder(separators=(",", ":")).encode


class EventSink:
    """Interface of one event destination.  ``write`` takes the record
    dict plus its one-shot JSON encoding (no trailing newline); sinks
    must never raise into the campaign loop — delivery problems are
    logged and dropped."""

    def write(self, record: dict, line: str) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        return None


class JsonlEventSink(EventSink):
    """Append events to a JSON-lines file (or stdout for ``"-"``),
    flushing after every record so an aborted run still leaves a
    parseable file — the same contract as the telemetry JSONL sink."""

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        self._file = None

    def write(self, record: dict, line: str) -> None:
        if self._file is None:
            if self.path == "-":
                self._file = sys.stdout
            else:
                self._file = open(self.path, "a", encoding="utf-8")
        self._file.write(line + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None and self._file is not sys.stdout:
            self._file.close()
        self._file = None


class DatagramEventSink(EventSink):
    """Fire-and-forget datagram delivery to a local listener.

    Two address forms: a filesystem path (unix-domain datagram socket —
    create the listener with ``goofi watch PATH`` first) or a
    ``(host, port)`` tuple (UDP).  A missing or slow listener must not
    perturb the campaign: every send error is swallowed (logged at
    debug) and the record dropped — the JSONL sink is the lossless
    channel; sockets are a best-effort live feed.
    """

    def __init__(self, address: str | tuple[str, int]) -> None:
        self.address = address
        if isinstance(address, tuple):
            self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        else:
            self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM)
        self._socket.setblocking(False)

    def write(self, record: dict, line: str) -> None:
        payload = line.encode("utf-8")
        if len(payload) > _MAX_DATAGRAM:
            logger.debug(
                "dropping oversized %r event (%d bytes)",
                record.get("kind"), len(payload),
            )
            return
        try:
            self._socket.sendto(payload, self.address)
        except OSError as exc:
            logger.debug(
                "dropping %r event: %s", record.get("kind"), exc
            )

    def close(self) -> None:
        self._socket.close()


class EventBus:
    """The per-run event emitter the campaign engines carry.

    Sequence numbers are per-bus and gap-free; the bus stamps the
    envelope and fans the record out to every sink.  One bus serves one
    campaign run (serial or the parallel *coordinator* — workers never
    own sinks; their results flow through the coordinator, which emits
    in deterministic plan order).
    """

    __slots__ = ("sinks", "enabled", "_seq")

    def __init__(self, sinks: list[EventSink] | tuple[EventSink, ...] = ()) -> None:
        self.sinks = list(sinks)
        self.enabled = True
        self._seq = 0

    def emit(self, kind: str, **fields) -> dict:
        """Stamp the envelope and deliver one record to every sink."""
        self._seq += 1
        record = {
            "v": EVENT_SCHEMA_VERSION,
            "seq": self._seq,
            "ts": round(time.time(), 6),
            "kind": kind,
            **fields,
        }
        line = _encode(record)
        for sink in self.sinks:
            sink.write(record, line)
        return record

    def experiment_finished(
        self,
        progress_event,
        *,
        pruned: bool = False,
        spot_check: bool = False,
        worker: int = 0,
        completed: int | None = None,
    ) -> dict:
        """The per-experiment record, built from a
        :class:`~repro.core.progress.ProgressEvent` (which carries the
        rolling rate/ETA).  ``completed`` overrides the progress
        counter when the coordinator releases buffered events in plan
        order (arrival order and release order differ there)."""
        return self.emit(
            "experiment_finished",
            campaign=progress_event.campaign_name,
            experiment=progress_event.experiment_name,
            outcome=progress_event.outcome,
            completed=(
                progress_event.completed if completed is None else completed
            ),
            total=progress_event.total,
            elapsed_seconds=round(progress_event.elapsed_seconds, 6),
            rate=round(progress_event.rate, 6),
            eta_seconds=(
                None
                if progress_event.eta_seconds is None
                else round(progress_event.eta_seconds, 6)
            ),
            pruned=pruned,
            spot_check=spot_check,
            worker=worker,
        )

    def close(self) -> None:
        for sink in self.sinks:
            try:
                sink.close()
            except Exception:  # noqa: BLE001 - cleanup must not raise
                logger.debug("event sink close failed", exc_info=True)
        self.sinks = []


class _NullEventBus(EventBus):
    """Disabled bus: ``enabled`` is False and every operation a no-op,
    so call sites guard payload construction with one attribute read."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(())
        self.enabled = False

    def emit(self, kind: str, **fields) -> dict:
        return {}

    def experiment_finished(self, progress_event, **kwargs) -> dict:
        return {}

    def close(self) -> None:
        return None


#: Shared disabled instance — the default on the campaign engines.
NULL_EVENTS = _NullEventBus()


def events_destination_sink(destination: str) -> EventSink:
    """Build the sink for one ``--events[=DEST]`` destination string:

    * ``"-"`` — JSONL on stdout (pipe-friendly; pair with the stderr
      progress ticker);
    * ``"udp://host:port"`` — UDP datagrams to a listener;
    * a path ending in ``.sock`` (or an existing socket file) —
      unix-domain datagrams to a ``goofi watch`` listener;
    * anything else — a JSONL file appended at that path.
    """
    if destination == "-":
        return JsonlEventSink("-")
    if destination.startswith("udp://"):
        rest = destination[len("udp://"):]
        host, _, port = rest.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigurationError(
                f"bad UDP events destination {destination!r}; "
                f"expected udp://host:port"
            )
        return DatagramEventSink((host, int(port)))
    path = Path(destination)
    if destination.endswith(".sock") or (path.exists() and path.is_socket()):
        return DatagramEventSink(destination)
    return JsonlEventSink(destination)


def resolve_events(value) -> EventBus:
    """Normalise the ``run_campaign(events=...)`` knob.

    Accepts a ready :class:`EventBus`, a destination string (see
    :func:`events_destination_sink`), a list of sinks, or ``None``
    (off).  Mirrors :func:`repro.core.telemetry.resolve_telemetry`.
    """
    if value is None or value is False:
        return NULL_EVENTS
    if isinstance(value, EventBus):
        return value
    if isinstance(value, str):
        return EventBus([events_destination_sink(value)])
    if isinstance(value, (list, tuple)):
        return EventBus(list(value))
    raise ConfigurationError(
        f"events must be a destination string, sink list, or EventBus; "
        f"got {value!r}"
    )


def iter_jsonl(path: str | Path):
    """Yield parsed records from a JSON-lines file, tolerating the
    truncated final line an aborted writer can leave behind: an
    undecodable line is skipped with a warning instead of crashing the
    reader (``goofi watch --replay``, trend analysis)."""
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                logger.warning(
                    "%s:%d: skipping undecodable JSONL line (truncated "
                    "write?)", path, number,
                )
