"""Fault triggers: *when* a fault is injected.

The base tool triggers on points in time (breakpoints "set according to
the points in time when the fault should be injected", obtained "by
analysing the workload code").  The paper's future-extensions list adds
"additional fault triggers such as access of certain data values,
execution of branch instructions or subprogram calls ... or at specific
times determined by a real-time clock" — all implemented here.

Every trigger resolves to a concrete cycle number against the reference
trace recorded during the campaign's fault-free run; the fault-injection
algorithm then arms a time breakpoint for that cycle.  This mirrors the
real tool, which analyses the workload to compute breakpoints before
arming them via the scan chains.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left
from dataclasses import dataclass, field

from .errors import ConfigurationError

TRIGGER_TIME = "time"
TRIGGER_BREAKPOINT = "breakpoint"
TRIGGER_DATA_ACCESS = "data_access"
TRIGGER_BRANCH = "branch"
TRIGGER_CALL = "call"
TRIGGER_CLOCK = "clock"


@dataclass(slots=True)
class ReferenceTrace:
    """Events recorded during the reference (fault-free) run, used to
    resolve triggers and by the pre-injection liveness analysis.

    ``instructions`` holds one ``(cycle, pc, opname)`` tuple per executed
    instruction; ``mem_accesses`` one ``(cycle, kind, address)`` per data
    access, ``kind`` being ``"read"`` or ``"write"``.
    """

    instructions: list[tuple[int, int, str]] = field(default_factory=list)
    mem_accesses: list[tuple[int, str, int]] = field(default_factory=list)
    #: register accesses as (cycle, kind, register-index), kind being
    #: "read" or "write" — the raw material of pre-injection analysis.
    reg_accesses: list[tuple[int, str, int]] = field(default_factory=list)
    duration: int = 0  # total cycles of the reference run

    # Lazily built indices ------------------------------------------------
    _pc_cycles: dict[int, list[int]] | None = None
    _branch_cycles: list[int] | None = None
    _call_cycles: list[int] | None = None
    _access_cycles: dict[tuple[str, int], list[int]] | None = None
    _reg_events: dict[int, list[tuple[int, str]]] | None = None

    def to_payload(self) -> dict:
        """Picklable event-list form for shipping to parallel workers
        (via the shared-state segment or the serialising fallback); the
        lazy indices are rebuilt on the receiving side on demand."""
        return {
            "instructions": [list(event) for event in self.instructions],
            "mem_accesses": [list(event) for event in self.mem_accesses],
            "reg_accesses": [list(event) for event in self.reg_accesses],
            "duration": self.duration,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ReferenceTrace":
        """Rebuild from :meth:`to_payload` output.

        Element types survive both transports (pickle and JSON) as-is,
        so rebuilding is a single C-level ``map(tuple, ...)`` per event
        list — this runs on every worker startup and its cost is part of
        the attach path the shared-state engine is meant to keep small.
        """
        return cls(
            instructions=list(map(tuple, payload["instructions"])),
            mem_accesses=list(map(tuple, payload["mem_accesses"])),
            reg_accesses=list(map(tuple, payload["reg_accesses"])),
            duration=int(payload["duration"]),
        )

    def pc_cycles(self, pc: int) -> list[int]:
        """Cycles at which the instruction at ``pc`` was executed."""
        if self._pc_cycles is None:
            index: dict[int, list[int]] = {}
            for cycle, instr_pc, _ in self.instructions:
                index.setdefault(instr_pc, []).append(cycle)
            self._pc_cycles = index
        return self._pc_cycles.get(pc, [])

    def branch_cycles(self) -> list[int]:
        if self._branch_cycles is None:
            self._branch_cycles = [
                cycle for cycle, _, opname in self.instructions if opname.startswith("B")
            ]
        return self._branch_cycles

    def call_cycles(self) -> list[int]:
        if self._call_cycles is None:
            self._call_cycles = [
                cycle for cycle, _, opname in self.instructions if opname == "CALL"
            ]
        return self._call_cycles

    def access_cycles(self, address: int, kind: str = "any") -> list[int]:
        """Cycles at which ``address`` was read/written ("access of
        certain data values" trigger)."""
        if self._access_cycles is None:
            index: dict[tuple[str, int], list[int]] = {}
            for cycle, access_kind, access_addr in self.mem_accesses:
                index.setdefault((access_kind, access_addr), []).append(cycle)
                index.setdefault(("any", access_addr), []).append(cycle)
            self._access_cycles = index
        return self._access_cycles.get((kind, address), [])

    def reg_events(self, register: int) -> list[tuple[int, str]]:
        """Chronological ``(cycle, kind)`` access events of one
        register, kinds ``"read"``/``"write"``."""
        if self._reg_events is None:
            index: dict[int, list[tuple[int, str]]] = {}
            for cycle, kind, reg in self.reg_accesses:
                index.setdefault(reg, []).append((cycle, kind))
            self._reg_events = index
        return self._reg_events.get(register, [])

    def mem_events(self, address: int) -> list[tuple[int, str]]:
        """Chronological ``(cycle, kind)`` access events of one memory
        word."""
        events = [
            (cycle, kind) for cycle, kind, addr in self.mem_accesses if addr == address
        ]
        return events


def _nth(cycles: list[int], occurrence: int, what: str) -> int:
    if occurrence < 1:
        raise ConfigurationError(f"trigger occurrence must be >= 1, not {occurrence}")
    if occurrence > len(cycles):
        raise ConfigurationError(
            f"trigger asks for occurrence {occurrence} of {what}, "
            f"but the reference run has only {len(cycles)}"
        )
    return cycles[occurrence - 1]


@dataclass(frozen=True, slots=True)
class TimeTrigger:
    """Inject before the instruction executed at ``cycle``."""

    cycle: int

    name = TRIGGER_TIME

    def resolve(self, trace: ReferenceTrace) -> int:
        if not 0 <= self.cycle <= trace.duration:
            raise ConfigurationError(
                f"time trigger cycle {self.cycle} outside reference run "
                f"(duration {trace.duration})"
            )
        return self.cycle

    def to_dict(self) -> dict:
        return {"trigger": self.name, "cycle": self.cycle}


@dataclass(frozen=True, slots=True)
class BreakpointTrigger:
    """Inject at the ``occurrence``-th execution of the instruction at
    ``address`` (a classic code breakpoint)."""

    address: int
    occurrence: int = 1

    name = TRIGGER_BREAKPOINT

    def resolve(self, trace: ReferenceTrace) -> int:
        return _nth(trace.pc_cycles(self.address), self.occurrence, f"pc=0x{self.address:04X}")

    def to_dict(self) -> dict:
        return {"trigger": self.name, "address": self.address, "occurrence": self.occurrence}


@dataclass(frozen=True, slots=True)
class DataAccessTrigger:
    """Inject at the ``occurrence``-th access of a data address."""

    address: int
    access: str = "any"  # "read" | "write" | "any"
    occurrence: int = 1

    name = TRIGGER_DATA_ACCESS

    def __post_init__(self) -> None:
        if self.access not in ("read", "write", "any"):
            raise ConfigurationError(f"bad access kind {self.access!r}")

    def resolve(self, trace: ReferenceTrace) -> int:
        cycles = trace.access_cycles(self.address, self.access)
        return _nth(cycles, self.occurrence, f"{self.access} of 0x{self.address:04X}")

    def to_dict(self) -> dict:
        return {
            "trigger": self.name,
            "address": self.address,
            "access": self.access,
            "occurrence": self.occurrence,
        }


@dataclass(frozen=True, slots=True)
class BranchTrigger:
    """Inject at the ``occurrence``-th executed branch instruction."""

    occurrence: int = 1

    name = TRIGGER_BRANCH

    def resolve(self, trace: ReferenceTrace) -> int:
        return _nth(trace.branch_cycles(), self.occurrence, "branch execution")

    def to_dict(self) -> dict:
        return {"trigger": self.name, "occurrence": self.occurrence}


@dataclass(frozen=True, slots=True)
class CallTrigger:
    """Inject at the ``occurrence``-th subprogram call."""

    occurrence: int = 1

    name = TRIGGER_CALL

    def resolve(self, trace: ReferenceTrace) -> int:
        return _nth(trace.call_cycles(), self.occurrence, "subprogram call")

    def to_dict(self) -> dict:
        return {"trigger": self.name, "occurrence": self.occurrence}


@dataclass(frozen=True, slots=True)
class ClockTrigger:
    """Inject at the ``tick``-th tick of a real-time clock of period
    ``period`` cycles."""

    period: int
    tick: int = 1

    name = TRIGGER_CLOCK

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError("clock trigger period must be positive")
        if self.tick < 1:
            raise ConfigurationError("clock trigger tick must be >= 1")

    def resolve(self, trace: ReferenceTrace) -> int:
        cycle = self.period * self.tick
        if cycle > trace.duration:
            raise ConfigurationError(
                f"clock trigger tick {self.tick} (cycle {cycle}) is past the "
                f"reference run duration {trace.duration}"
            )
        return cycle

    def to_dict(self) -> dict:
        return {"trigger": self.name, "period": self.period, "tick": self.tick}


Trigger = (
    TimeTrigger
    | BreakpointTrigger
    | DataAccessTrigger
    | BranchTrigger
    | CallTrigger
    | ClockTrigger
)

_TRIGGER_TYPES = {
    TRIGGER_TIME: TimeTrigger,
    TRIGGER_BREAKPOINT: BreakpointTrigger,
    TRIGGER_DATA_ACCESS: DataAccessTrigger,
    TRIGGER_BRANCH: BranchTrigger,
    TRIGGER_CALL: CallTrigger,
    TRIGGER_CLOCK: ClockTrigger,
}


def trigger_from_dict(data: dict) -> Trigger:
    """Deserialise a trigger stored in campaign/experiment data.

    Malformed payloads — unknown trigger names, unexpected or missing
    keys (hand-written pack YAML, corrupted experiment rows) — raise
    :class:`ConfigurationError` naming the offending payload rather
    than leaking a bare ``TypeError``.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(f"trigger payload must be a mapping, got {data!r}")
    name = data.get("trigger")
    try:
        trigger_type = _TRIGGER_TYPES[name]
    except (KeyError, TypeError):
        known = ", ".join(sorted(_TRIGGER_TYPES))
        raise ConfigurationError(
            f"unknown trigger type {name!r} in payload {data!r}; known: {known}"
        ) from None
    kwargs = {key: value for key, value in data.items() if key != "trigger"}
    expected = {f.name for f in dataclasses.fields(trigger_type)}
    unexpected = sorted(set(kwargs) - expected)
    if unexpected:
        raise ConfigurationError(
            f"{name} trigger does not accept key(s) {', '.join(unexpected)} "
            f"in payload {data!r}; accepted: {', '.join(sorted(expected))}"
        )
    try:
        return trigger_type(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad {name} trigger payload {data!r}: {exc}"
        ) from None


def cycles_in_window(trace: ReferenceTrace, start: int, end: int) -> tuple[int, int]:
    """Clamp an injection-time window to the reference run, returning a
    half-open ``(lo, hi)`` cycle range usable for uniform sampling."""
    lo = max(0, start)
    hi = min(end, trace.duration)
    if lo >= hi:
        raise ConfigurationError(
            f"injection window [{start}, {end}) is empty within a reference "
            f"run of {trace.duration} cycles"
        )
    return lo, hi


def nearest_access_after(trace: ReferenceTrace, address: int, cycle: int) -> int | None:
    """First access of ``address`` at or after ``cycle`` (used by the
    pre-injection analysis to reason about fault activation)."""
    cycles = trace.access_cycles(address)
    index = bisect_left(cycles, cycle)
    return cycles[index] if index < len(cycles) else None
