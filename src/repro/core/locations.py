"""Fault-injection locations and the hierarchical location space.

The paper's set-up phase presents "the fault injection locations from a
hierarchical list of possible locations" (Figure 6): scan chains contain
groups (register file, control registers, cache arrays, pins), groups
contain named elements, elements contain bits.  Memory areas are
locations too — that is where pre-runtime SWIFI injects.

A :class:`Location` pins one *bit*: the atomic unit the bit-flip fault
model operates on.  A :class:`LocationSpace` describes everything a
target offers and supports glob-style selection, which is how campaigns
say "all register bits" (``internal:regs.*``) or "the data area"
(``memory:data``).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field

from .errors import ConfigurationError

#: Location kinds.
KIND_SCAN = "scan"
KIND_MEMORY = "memory"


@dataclass(frozen=True, slots=True)
class Location:
    """One injectable (or observable) bit in the target system.

    Scan locations name a chain element bit::

        Location(kind="scan", chain="internal", element="regs.R3", bit=7)

    Memory locations name an address bit::

        Location(kind="memory", address=0x4010, bit=31)
    """

    kind: str
    bit: int
    chain: str = ""
    element: str = ""
    address: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (KIND_SCAN, KIND_MEMORY):
            raise ConfigurationError(f"unknown location kind {self.kind!r}")
        if self.bit < 0:
            raise ConfigurationError(f"negative bit index {self.bit}")
        if self.kind == KIND_SCAN and (not self.chain or not self.element):
            raise ConfigurationError("scan locations need a chain and element name")

    def label(self) -> str:
        """Human- and database-friendly spelling, e.g.
        ``internal:regs.R3[7]`` or ``memory:0x4010[31]``."""
        if self.kind == KIND_SCAN:
            return f"{self.chain}:{self.element}[{self.bit}]"
        return f"memory:0x{self.address:04X}[{self.bit}]"

    @property
    def element_key(self) -> str:
        """Key identifying the containing element (ignoring the bit)."""
        if self.kind == KIND_SCAN:
            return f"{self.chain}:{self.element}"
        return f"memory:0x{self.address:04X}"

    def to_dict(self) -> dict:
        if self.kind == KIND_SCAN:
            return {"kind": self.kind, "chain": self.chain, "element": self.element, "bit": self.bit}
        return {"kind": self.kind, "address": self.address, "bit": self.bit}

    @classmethod
    def from_dict(cls, data: dict) -> "Location":
        if data["kind"] == KIND_SCAN:
            return cls(
                kind=KIND_SCAN,
                chain=data["chain"],
                element=data["element"],
                bit=int(data["bit"]),
            )
        return cls(kind=KIND_MEMORY, address=int(data["address"]), bit=int(data["bit"]))

    @classmethod
    def parse(cls, label: str) -> "Location":
        """Inverse of :meth:`label`."""
        body, _, bit_part = label.rpartition("[")
        if not bit_part.endswith("]"):
            raise ConfigurationError(f"bad location label {label!r}")
        bit = int(bit_part[:-1])
        prefix, _, rest = body.partition(":")
        if prefix == "memory":
            return cls(kind=KIND_MEMORY, address=int(rest, 0), bit=bit)
        return cls(kind=KIND_SCAN, chain=prefix, element=rest, bit=bit)


@dataclass(frozen=True, slots=True)
class ScanElementInfo:
    """Description of a scan element within a location space."""

    chain: str
    name: str
    width: int
    writable: bool

    @property
    def key(self) -> str:
        return f"{self.chain}:{self.name}"

    @property
    def group(self) -> str:
        """Hierarchy group: the prefix before the first '.', e.g.
        ``regs``, ``ctrl``, ``icache``, ``pins``."""
        return self.name.split(".")[0]


@dataclass(frozen=True, slots=True)
class MemoryRegionInfo:
    """A named, injectable memory region (program/data area)."""

    name: str  # "program" | "data" | custom
    base: int
    limit: int  # exclusive
    word_bits: int = 32

    @property
    def words(self) -> int:
        return self.limit - self.base

    @property
    def total_bits(self) -> int:
        return self.words * self.word_bits


@dataclass(slots=True)
class LocationSpace:
    """Everything a target offers for injection and observation.

    Built from the target's ``TargetSystemData`` configuration; the
    campaign set-up phase selects subsets of it with glob patterns:

    * ``"<chain>:<element-glob>"`` — scan elements, e.g.
      ``internal:regs.*`` or ``internal:icache.line*.data``;
    * ``"memory:<region-name>"`` — a whole memory region.
    """

    scan_elements: list[ScanElementInfo] = field(default_factory=list)
    memory_regions: list[MemoryRegionInfo] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction / serialisation
    # ------------------------------------------------------------------
    @classmethod
    def from_target_config(cls, config: dict) -> "LocationSpace":
        """Build from the ``configJson`` stored in ``TargetSystemData``
        (the dict produced by :meth:`to_config`)."""
        scan = [
            ScanElementInfo(
                chain=entry["chain"],
                name=entry["name"],
                width=int(entry["width"]),
                writable=bool(entry["writable"]),
            )
            for entry in config.get("scan_elements", [])
        ]
        regions = [
            MemoryRegionInfo(
                name=entry["name"],
                base=int(entry["base"]),
                limit=int(entry["limit"]),
                word_bits=int(entry.get("word_bits", 32)),
            )
            for entry in config.get("memory_regions", [])
        ]
        return cls(scan_elements=scan, memory_regions=regions)

    def to_config(self) -> dict:
        return {
            "scan_elements": [
                {
                    "chain": e.chain,
                    "name": e.name,
                    "width": e.width,
                    "writable": e.writable,
                }
                for e in self.scan_elements
            ],
            "memory_regions": [
                {"name": r.name, "base": r.base, "limit": r.limit, "word_bits": r.word_bits}
                for r in self.memory_regions
            ],
        }

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def element(self, chain: str, name: str) -> ScanElementInfo:
        for info in self.scan_elements:
            if info.chain == chain and info.name == name:
                return info
        raise ConfigurationError(f"no scan element {chain}:{name} in location space")

    def region(self, name: str) -> MemoryRegionInfo:
        for info in self.memory_regions:
            if info.name == name:
                return info
        raise ConfigurationError(f"no memory region {name!r} in location space")

    def groups(self, chain: str) -> dict[str, list[ScanElementInfo]]:
        """The hierarchical view of one chain: group -> elements
        (the paper's Figure 6 tree)."""
        tree: dict[str, list[ScanElementInfo]] = {}
        for info in self.scan_elements:
            if info.chain == chain:
                tree.setdefault(info.group, []).append(info)
        return tree

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(self, patterns: list[str], writable_only: bool = True) -> "LocationSelection":
        """Resolve glob patterns to a concrete selection of injectable
        bits.  Raises :class:`ConfigurationError` when a pattern matches
        nothing — silently empty selections hide configuration typos.
        """
        elements: list[ScanElementInfo] = []
        regions: list[MemoryRegionInfo] = []
        seen_elements: set[str] = set()
        seen_regions: set[str] = set()
        for pattern in patterns:
            prefix, _, rest = pattern.partition(":")
            matched = False
            if prefix == "memory":
                for info in self.memory_regions:
                    if fnmatch.fnmatchcase(info.name, rest):
                        matched = True
                        if info.name not in seen_regions:
                            seen_regions.add(info.name)
                            regions.append(info)
            else:
                for info in self.scan_elements:
                    if info.chain != prefix:
                        continue
                    if writable_only and not info.writable:
                        continue
                    if fnmatch.fnmatchcase(info.name, rest):
                        matched = True
                        if info.key not in seen_elements:
                            seen_elements.add(info.key)
                            elements.append(info)
            if not matched:
                raise ConfigurationError(f"location pattern {pattern!r} matched nothing")
        return LocationSelection(elements=elements, regions=regions)


@dataclass(slots=True)
class LocationSelection:
    """A resolved set of injectable bits, uniformly samplable.

    Sampling is uniform over *bits*, matching the flat bit-flip space a
    scan-chain injector sees: a 32-bit register contributes 32 candidate
    faults, a 1-bit parity cell contributes one.
    """

    elements: list[ScanElementInfo]
    regions: list[MemoryRegionInfo]

    def total_bits(self) -> int:
        scan_bits = sum(e.width for e in self.elements)
        memory_bits = sum(r.total_bits for r in self.regions)
        return scan_bits + memory_bits

    def bit_at(self, index: int) -> Location:
        """The ``index``-th bit of the selection (scan elements first,
        then memory regions, in selection order)."""
        if index < 0:
            raise ConfigurationError(f"negative bit index {index}")
        remaining = index
        for info in self.elements:
            if remaining < info.width:
                return Location(
                    kind=KIND_SCAN, chain=info.chain, element=info.name, bit=remaining
                )
            remaining -= info.width
        for region in self.regions:
            if remaining < region.total_bits:
                word, bit = divmod(remaining, region.word_bits)
                return Location(kind=KIND_MEMORY, address=region.base + word, bit=bit)
            remaining -= region.total_bits
        raise ConfigurationError(
            f"bit index {index} out of range (selection has {self.total_bits()} bits)"
        )

    def sample(self, rng) -> Location:
        """Draw one location uniformly at random over all bits."""
        total = self.total_bits()
        if total == 0:
            raise ConfigurationError("cannot sample from an empty location selection")
        return self.bit_at(int(rng.integers(total)))
