"""Pre-injection liveness analysis (paper §4, future extensions).

"The purpose of this analysis is to determine when registers and other
fault injection locations hold live data.  Injecting a fault into a
location that does not hold live data serves no purpose, since the
fault will be overwritten."

Given the reference trace, a location is *live at cycle t* when the
first access at or after ``t`` is a **read**: the corrupted value would
be consumed.  If the next access is a write (or the location is never
accessed again), a fault injected at ``t`` is overwritten or stays
dormant — a wasted experiment.

The analysis covers the locations whose data flow the trace captures:
the general registers (``internal:regs.Rn``) and memory words.  Control
state (PC, PSW, IR, ...) and cache arrays are conservatively treated as
always-live, since a corruption there can act immediately.

This is the idea the GOOFI group later expanded into optimised
fault-injection ("injection into live registers only"); here it powers
the plan filter used by campaign generation and the E5 efficiency
benchmark.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from .errors import ConfigurationError
from .locations import KIND_MEMORY, KIND_SCAN, Location, LocationSelection
from .triggers import ReferenceTrace


@dataclass(frozen=True, slots=True)
class LiveInterval:
    """A half-open cycle interval ``[start, end)`` during which a fault
    would be consumed by the read that closes the interval at ``end``."""

    start: int
    end: int

    def __contains__(self, cycle: int) -> bool:
        return self.start <= cycle < self.end


def _live_intervals(events: list[tuple[int, str]]) -> list[LiveInterval]:
    """Live intervals from a chronological (cycle, kind) event list.

    An injection at cycle ``t`` happens *before* the instruction of
    cycle ``t`` executes, so an access at exactly ``t`` is the first
    access "after" the fault.  A read at cycle ``c`` therefore makes
    ``(previous_access, c]`` live — expressed half-open on injection
    cycles as ``[prev + 1, c + 1)``.  The location is also live from
    cycle 0 up to a leading read (initial data loaded before start).
    """
    intervals: list[LiveInterval] = []
    previous = -1
    for cycle, kind in events:
        if kind == "read":
            start = previous + 1
            if start <= cycle:
                if intervals and intervals[-1].end == start:
                    intervals[-1] = LiveInterval(intervals[-1].start, cycle + 1)
                else:
                    intervals.append(LiveInterval(start, cycle + 1))
        previous = cycle
    # Merge adjacent reads with no intervening write: handled above via
    # interval extension when start == last.end.
    return intervals


@dataclass(slots=True)
class LivenessAnalysis:
    """Per-location liveness derived from one reference trace."""

    trace: ReferenceTrace
    #: Location element keys treated as always-live (control state).
    always_live_prefixes: tuple[str, ...] = (
        "ctrl.",
        "icache.",
        "dcache.",
        "pins.",
    )
    _register_intervals: dict[int, list[LiveInterval]] = field(default_factory=dict)
    _memory_intervals: dict[int, list[LiveInterval]] = field(default_factory=dict)
    _memory_indexed: bool = False

    # ------------------------------------------------------------------
    def register_intervals(self, register: int) -> list[LiveInterval]:
        if register not in self._register_intervals:
            events = self.trace.reg_events(register)
            self._register_intervals[register] = _live_intervals(events)
        return self._register_intervals[register]

    def memory_intervals(self, address: int) -> list[LiveInterval]:
        if not self._memory_indexed:
            per_address: dict[int, list[tuple[int, str]]] = {}
            for cycle, kind, addr in self.trace.mem_accesses:
                per_address.setdefault(addr, []).append((cycle, kind))
            self._memory_intervals = {
                addr: _live_intervals(events)
                for addr, events in per_address.items()
            }
            self._memory_indexed = True
        return self._memory_intervals.get(address, [])

    def accessed_addresses(self) -> list[int]:
        """Memory addresses the reference run touched (the only ones
        that can have live intervals)."""
        self.memory_intervals(0)  # force the index
        return list(self._memory_intervals)

    # ------------------------------------------------------------------
    def intervals_for(self, location: Location) -> list[LiveInterval] | None:
        """Live intervals of a location, or ``None`` when the analysis
        cannot reason about it (always-live fallback)."""
        if location.kind == KIND_MEMORY:
            return self.memory_intervals(location.address)
        if location.kind == KIND_SCAN:
            element = location.element
            if element.startswith("regs.R"):
                return self.register_intervals(int(element.removeprefix("regs.R")))
            for prefix in self.always_live_prefixes:
                if element.startswith(prefix):
                    return None
        return None

    def is_live(self, location: Location, cycle: int) -> bool:
        """Would a fault at ``cycle`` in ``location`` be consumed?

        Unanalysable (control/cache/pin) locations report live — the
        filter must never *add* spurious experiments, only skip provably
        wasted ones.
        """
        intervals = self.intervals_for(location)
        if intervals is None:
            return True
        index = bisect_left([iv.end for iv in intervals], cycle + 1)
        return index < len(intervals) and cycle in intervals[index]

    def live_fraction(self, location: Location, window: tuple[int, int]) -> float:
        """Fraction of the injection window during which the location is
        live (the paper's efficiency argument, quantified)."""
        lo, hi = window
        if hi <= lo:
            raise ConfigurationError(f"empty window {window}")
        intervals = self.intervals_for(location)
        if intervals is None:
            return 1.0
        covered = 0
        for interval in intervals:
            covered += max(0, min(interval.end, hi) - max(interval.start, lo))
        return covered / (hi - lo)


@dataclass(slots=True)
class PreInjectionFilter:
    """Samples (location, cycle) pairs that pass the liveness test.

    ``max_attempts_per_sample`` bounds rejection sampling; when a
    selection is almost entirely dead in the window the filter falls
    back to direct interval sampling per location.
    """

    analysis: LivenessAnalysis
    max_attempts_per_sample: int = 200

    def sample(
        self,
        selection: LocationSelection,
        window: tuple[int, int],
        rng,
    ) -> tuple[Location, int]:
        lo, hi = window
        for _ in range(self.max_attempts_per_sample):
            location = selection.sample(rng)
            cycle = int(rng.integers(lo, hi))
            if self.analysis.is_live(location, cycle):
                return location, cycle
        # Rejection sampling failed: enumerate every element of the
        # selection deterministically and sample within the live windows
        # of those that have any (weighted by window length).  Always-
        # live elements join the weighted draw with the whole window as
        # their live span — short-circuiting on the first one would skew
        # the fallback toward iteration order and starve the memory
        # regions below of any probability mass.
        candidates: list[tuple[Location, list[tuple[int, int]], int]] = []
        for info in selection.elements:
            location = Location(
                kind=KIND_SCAN,
                chain=info.chain,
                element=info.name,
                bit=int(rng.integers(info.width)),
            )
            windows = self._clamped_windows(location, lo, hi)
            if windows is None:
                windows = [(lo, hi)]
            if windows:
                total = sum(end - start for start, end in windows)
                candidates.append((location, windows, total))
        for region in selection.regions:
            # Only addresses the reference run ever read can be live.
            for address in sorted(self.analysis.accessed_addresses()):
                if not region.base <= address < region.limit:
                    continue
                location = Location(
                    kind=KIND_MEMORY,
                    address=address,
                    bit=int(rng.integers(region.word_bits)),
                )
                windows = self._clamped_windows(location, lo, hi)
                if windows:
                    total = sum(end - start for start, end in windows)
                    candidates.append((location, windows, total))
        if not candidates:
            raise ConfigurationError(
                "pre-injection analysis found no live (location, time) pair; "
                "widen the injection window or the location selection"
            )
        grand_total = sum(total for _loc, _win, total in candidates)
        offset = int(rng.integers(grand_total))
        for location, windows, total in candidates:
            if offset >= total:
                offset -= total
                continue
            for start, end in windows:
                if offset < end - start:
                    return location, start + offset
                offset -= end - start
        raise AssertionError("weighted window sampling fell through")  # pragma: no cover

    def _clamped_windows(
        self, location: Location, lo: int, hi: int
    ) -> list[tuple[int, int]] | None:
        """Live windows of ``location`` clamped to [lo, hi); ``None``
        when the analysis treats the location as always-live."""
        intervals = self.analysis.intervals_for(location)
        if intervals is None:
            return None
        return [
            (max(iv.start, lo), min(iv.end, hi))
            for iv in intervals
            if min(iv.end, hi) > max(iv.start, lo)
        ]
