"""Exception hierarchy of the GOOFI core layers."""

from __future__ import annotations


class GoofiError(Exception):
    """Base class for all tool-level errors."""


class ConfigurationError(GoofiError):
    """A campaign or target configuration is inconsistent or incomplete."""


class TargetError(GoofiError):
    """The target-system interface failed an operation (e.g. a scan
    chain or workload the target does not have)."""


class CampaignAborted(GoofiError):
    """A campaign run was ended early through the progress controller
    (the paper's progress window offers pause / restart / end)."""


class AnalysisError(GoofiError):
    """The analysis phase could not interpret logged data."""
