"""One-writer/many-reader shared state for parallel campaigns.

A parallel campaign's workers all need the same read-only preamble: the
reference trace, the golden probe snapshots (with the liveness map), and
the fault-free initial image used to seed checkpoint caches.  Before
this module each worker re-derived or re-deserialised that state on
startup — the coordinator re-ran ``phase.reference`` *per worker* and
shipped golden payloads through pickled process arguments.

Here the coordinator publishes everything **once** into a single
``multiprocessing.shared_memory`` segment and hands workers a tiny
descriptor (the segment name).  Workers attach read-only: large buffers
(golden chain images, memory words) become memoryviews straight into the
shared pages — no copies, no deserialisation — and the remaining
metadata is one small pickle load.

Segment layout::

    [8-byte LE header length n][n-byte pickled header][buffer bytes...]

The header carries the caller's ``meta`` object plus an index mapping
buffer keys to ``(offset, length)`` spans in the buffer region.

When shared memory is unavailable (platform without ``/dev/shm``,
permission-restricted sandboxes), :func:`publish` returns ``None`` and
the caller falls back to shipping the same ``(meta, buffers)`` inline
through the worker arguments — the serialising fallback.  Attachment is
symmetric: :meth:`SharedStateView.attach` accepts either descriptor
form, so workers never care which transport was used.
"""

from __future__ import annotations

import logging
import pickle
import struct

log = logging.getLogger(__name__)

_HEADER_LEN = struct.Struct("<Q")


def _attach_segment(name: str):
    """Open an existing shared-memory segment, untracked where the
    platform allows it.

    Python's ``resource_tracker`` assumes every process that opens a
    segment owns it (bpo-39959); only the coordinator owns ours.  Newer
    Pythons expose ``track=False``.  On older ones the attach-side
    registration is left in place: under the default ``fork`` start
    method the workers share the coordinator's tracker process, whose
    registry is a set — the duplicate registration is a no-op and the
    coordinator's ``unlink`` clears it exactly once.  (Explicitly
    unregistering here would instead make that ``unlink`` a noisy
    double-remove.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class SharedStateHandle:
    """The coordinator's side of a publication: owns the segment and
    unlinks it when the campaign finishes."""

    __slots__ = ("_segment", "descriptor")

    def __init__(self, segment) -> None:
        self._segment = segment
        #: Small picklable token workers attach with.
        self.descriptor = {"shm": segment.name}

    def close(self) -> None:
        """Release and remove the segment (coordinator teardown)."""
        try:
            self._segment.close()
        except Exception:
            pass
        try:
            self._segment.unlink()
        except Exception:
            pass


def publish(meta: object, buffers: dict[str, bytes]) -> SharedStateHandle | None:
    """Publish ``meta`` plus named ``buffers`` into one shared segment.

    Returns a :class:`SharedStateHandle` (whose ``descriptor`` goes into
    the worker arguments), or ``None`` when shared memory is unavailable
    — the caller then ships an inline descriptor instead (see
    :func:`inline_descriptor`).
    """
    index: dict[str, tuple[int, int]] = {}
    offset = 0
    for key, blob in buffers.items():
        index[key] = (offset, len(blob))
        offset += len(blob)
    header = pickle.dumps({"meta": meta, "index": index})
    total = _HEADER_LEN.size + len(header) + offset
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
    except Exception as exc:
        log.warning("shared memory unavailable (%s); falling back to serialising", exc)
        return None
    try:
        view = segment.buf
        view[: _HEADER_LEN.size] = _HEADER_LEN.pack(len(header))
        view[_HEADER_LEN.size : _HEADER_LEN.size + len(header)] = header
        base = _HEADER_LEN.size + len(header)
        for key, blob in buffers.items():
            start, length = index[key]
            view[base + start : base + start + length] = blob
    except Exception:
        segment.close()
        try:
            segment.unlink()
        except Exception:
            pass
        raise
    return SharedStateHandle(segment)


def inline_descriptor(meta: object, buffers: dict[str, bytes]) -> dict:
    """The serialising-fallback descriptor: same content, shipped by
    value through the (pickled) worker arguments."""
    return {"inline": {"meta": meta, "buffers": dict(buffers)}}


class SharedStateView:
    """A worker's read-only view of a publication.

    ``meta`` is the published metadata; :meth:`buffer` returns named
    buffers as memoryviews into the shared pages (or the inline bytes in
    fallback mode).  All handed-out memoryviews are tracked and released
    by :meth:`close` — a shared segment cannot close while exports are
    alive.
    """

    __slots__ = ("meta", "_segment", "_index", "_base", "_inline", "_views")

    def __init__(self) -> None:
        self.meta = None
        self._segment = None
        self._index: dict[str, tuple[int, int]] = {}
        self._base = 0
        self._inline: dict[str, bytes] | None = None
        self._views: list[memoryview] = []

    @classmethod
    def attach(cls, descriptor: dict) -> "SharedStateView":
        """Attach to either descriptor form (shared segment or inline)."""
        view = cls()
        inline = descriptor.get("inline")
        if inline is not None:
            view.meta = inline["meta"]
            view._inline = inline["buffers"]
            return view
        segment = _attach_segment(descriptor["shm"])
        view._segment = segment
        raw = memoryview(segment.buf)
        view._views.append(raw)
        (header_len,) = _HEADER_LEN.unpack_from(raw, 0)
        header = pickle.loads(raw[_HEADER_LEN.size : _HEADER_LEN.size + header_len])
        view.meta = header["meta"]
        view._index = header["index"]
        view._base = _HEADER_LEN.size + header_len
        return view

    def buffer(self, key: str, typecode: str | None = None) -> memoryview:
        """The named buffer as a (read-only in spirit) memoryview, cast
        to ``typecode`` when given.  Raises ``KeyError`` for unknown
        names."""
        if self._inline is not None:
            view = memoryview(self._inline[key])
        else:
            start, length = self._index[key]
            view = memoryview(self._segment.buf)[
                self._base + start : self._base + start + length
            ]
            self._views.append(view)
        if typecode is not None:
            view = view.cast(typecode)
        self._views.append(view)
        return view

    def close(self) -> None:
        """Release every handed-out view, then detach from the segment."""
        for view in self._views:
            try:
                view.release()
            except Exception:
                pass
        self._views.clear()
        if self._segment is not None:
            try:
                self._segment.close()
            except BufferError:
                # A caller still holds an export; leaking the mapping
                # until process exit beats crashing worker teardown.
                pass
            except Exception:
                pass
            self._segment = None
