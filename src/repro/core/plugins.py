"""Plugin registry: target systems and fault-injection techniques.

"A major objective of the tool is to ... assist the user when adapting
the tool for new target systems and new fault injection techniques."
Adaptation is two registrations:

* a target system registers its :class:`TargetSystemInterface` subclass
  under a name (used as the ``TargetSystemData`` key);
* a technique registers the name of the algorithm method on
  :class:`repro.core.algorithms.FaultInjectionAlgorithms` that runs it.

The built-in Thor target and the SCIFI / SWIFI techniques register
themselves on import of :mod:`repro`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .errors import ConfigurationError
from .framework import TargetSystemInterface

_TARGETS: dict[str, Callable[[], TargetSystemInterface]] = {}
_TECHNIQUES: dict[str, str] = {}


def register_target(name: str, factory: Callable[[], TargetSystemInterface]) -> None:
    """Register a target-system interface factory under ``name``."""
    if name in _TARGETS:
        raise ConfigurationError(f"target {name!r} is already registered")
    _TARGETS[name] = factory


def create_target(name: str) -> TargetSystemInterface:
    try:
        factory = _TARGETS[name]
    except KeyError:
        known = ", ".join(sorted(_TARGETS)) or "(none)"
        raise ConfigurationError(f"unknown target {name!r}; registered: {known}") from None
    return factory()


def registered_targets() -> list[str]:
    return sorted(_TARGETS)


@dataclass(frozen=True, slots=True)
class Technique:
    """A registered fault-injection technique."""

    name: str
    algorithm_method: str
    description: str = ""


def register_technique(name: str, algorithm_method: str, description: str = "") -> None:
    if name in _TECHNIQUES:
        raise ConfigurationError(f"technique {name!r} is already registered")
    _TECHNIQUES[name] = algorithm_method


def technique_method(name: str) -> str:
    try:
        return _TECHNIQUES[name]
    except KeyError:
        known = ", ".join(sorted(_TECHNIQUES)) or "(none)"
        raise ConfigurationError(f"unknown technique {name!r}; registered: {known}") from None


def registered_techniques() -> list[str]:
    return sorted(_TECHNIQUES)


_ENVIRONMENTS: dict[str, Callable[..., object]] = {}


def register_environment(name: str, factory: Callable[..., object]) -> None:
    """Register an environment-simulator factory.

    The factory is called with the campaign's environment ``params``
    dict expanded as keyword arguments and must return an object with an
    ``exchange(target, iteration)`` method (see
    :mod:`repro.workloads.envsim`).
    """
    if name in _ENVIRONMENTS:
        raise ConfigurationError(f"environment {name!r} is already registered")
    _ENVIRONMENTS[name] = factory


def create_environment(name: str, params: dict | None = None):
    try:
        factory = _ENVIRONMENTS[name]
    except KeyError:
        known = ", ".join(sorted(_ENVIRONMENTS)) or "(none)"
        raise ConfigurationError(
            f"unknown environment simulator {name!r}; registered: {known}"
        ) from None
    return factory(**(params or {}))


def registered_environments() -> list[str]:
    return sorted(_ENVIRONMENTS)


def _reset_for_tests() -> None:
    """Clear the registries (test isolation helper)."""
    _TARGETS.clear()
    _TECHNIQUES.clear()
    _ENVIRONMENTS.clear()
