"""Liveness-based experiment pruning: skip provably no-effect runs.

The reference (golden) pass already records every architectural register
and memory access of the fault-free run.  From that trace this module
pre-classifies planned experiments as **no-effect by construction**: the
fault lands in a *dead window* — the stretch between the last access of
an element and the next **whole-element write** — so the corrupted value
is overwritten before anything reads it.  Such experiments are not
simulated; their result rows are *synthesised* from the reference run
and persisted with a ``pruned`` provenance flag, so coverage/latency
analysis, ``goofi gate`` and sample-size accounting see exactly the rows
a full simulation would have produced (ZOFI's pre-classification idea;
gqfi's "skip faults in memory the golden run never uses").

Soundness is deliberately narrow.  A fault is prunable only when every
one of these holds:

* **Transient bit-flips only.**  Permanent/intermittent models keep
  acting after the next write; they are never pruned.
* **Registers** (``internal:regs.Rn``, SCIFI or runtime-SWIFI): the
  first traced access at or after the injection cycle is a *write*.
  Whole-register writes close any bit; the register-parity EDM checks
  parity only on reads and re-syncs it on every write, so a dead-window
  flip can neither be consumed nor detected.  Reads are traced before
  writes at the same cycle, so a read-modify-write at the boundary
  conservatively blocks pruning.  Elements never accessed again are NOT
  pruned — the flip would survive into the final scan capture (latent).
* **Memory** (pre-runtime SWIFI only): the address lies in a *data*
  region (the MPU fetches code from the program area only, so a data
  word is never fetched) and its first traced access is a write.
  Runtime-SWIFI memory faults are never pruned: a mid-run host write
  snoop-invalidates the caches, perturbing micro-state the trace cannot
  see.  Campaigns with an environment simulator attached are never
  memory-pruned either — the per-iteration exchange does host memory
  I/O the trace does not record.
* **Whole-campaign guards**: normal logging mode only (detail mode logs
  per-instruction states that cannot be synthesised), and no declared
  environment-boundary faults (those make even a "no-effect" experiment
  differ from the clean reference).

The safety net: ``--prune=RATE`` re-simulates a seeded random sample of
the pruned experiments and hard-fails the campaign
(:class:`PruneDivergence`) if any simulated row differs from its
synthesised prediction.  ``--prune=1.0`` re-simulates everything — the
bit-identical equivalence bar used by the test suite and benchmark.
"""

from __future__ import annotations

import json
import random
from bisect import bisect_left
from dataclasses import dataclass, field

from ..db import ExperimentRecord
from .campaign import (
    LOGGING_NORMAL,
    TECHNIQUE_SWIFI_PRERUNTIME,
    CampaignConfig,
    ExperimentSpec,
    PlannedFault,
)
from .errors import ConfigurationError, GoofiError
from .faultmodels import is_transient
from .locations import KIND_MEMORY, KIND_SCAN, LocationSpace
from .triggers import ReferenceTrace

#: Fraction of pruned experiments re-simulated by default when
#: ``--prune`` is given without a rate.
DEFAULT_SPOT_CHECK_RATE = 0.1


class PruneDivergence(GoofiError):
    """A spot-checked pruned experiment did not match its synthesised
    no-effect prediction — the classifier is wrong for this campaign and
    the run must not be trusted."""


@dataclass(frozen=True, slots=True)
class PruneConfig:
    """How a campaign is pruned: the spot-check rate (fraction of pruned
    experiments re-simulated and compared against their synthesised
    rows)."""

    spot_check_rate: float = DEFAULT_SPOT_CHECK_RATE

    def __post_init__(self) -> None:
        if not 0.0 <= self.spot_check_rate <= 1.0:
            raise ConfigurationError(
                f"prune spot-check rate must be in [0, 1], "
                f"got {self.spot_check_rate}"
            )

    def to_dict(self) -> dict:
        return {"spot_check_rate": self.spot_check_rate}

    @classmethod
    def from_dict(cls, data: dict) -> "PruneConfig":
        return cls(
            spot_check_rate=float(
                data.get("spot_check_rate", DEFAULT_SPOT_CHECK_RATE)
            )
        )


def resolve_prune(value) -> PruneConfig | None:
    """Normalise the ``run_campaign(prune=...)`` knob.

    ``None``/``False`` → off; ``True`` → default config; a float/int →
    that spot-check rate; a dict → :meth:`PruneConfig.from_dict`; a
    ready :class:`PruneConfig` passes through."""
    if value is None or value is False:
        return None
    if value is True:
        return PruneConfig()
    if isinstance(value, PruneConfig):
        return value
    if isinstance(value, (int, float)):
        return PruneConfig(spot_check_rate=float(value))
    if isinstance(value, dict):
        return PruneConfig.from_dict(value)
    raise ConfigurationError(
        f"prune must be a bool, spot-check rate, dict, or PruneConfig; "
        f"got {value!r}"
    )


# ----------------------------------------------------------------------
# Liveness primitives
# ----------------------------------------------------------------------
def first_event_at_or_after(
    events: list[tuple[int, str]], cycle: int
) -> tuple[int, str] | None:
    """First access event at or after ``cycle`` (an injection at
    ``cycle`` lands *before* the instruction of that cycle executes).
    ``events`` is chronological with reads preceding writes at the same
    cycle, so a read-modify-write boundary reports the read."""
    index = bisect_left([c for c, _ in events], cycle)
    return events[index] if index < len(events) else None


def dead_windows(
    events: list[tuple[int, str]], duration: int
) -> list[tuple[int, int]]:
    """Half-open ``[start, end)`` injection-cycle windows in which a
    transient flip is overwritten before it can be read: every cycle in
    the window has a whole-element *write* as its first event at or
    after it.  The tail past the last access is NOT a dead window — a
    flip there survives to the final state capture."""
    windows: list[tuple[int, int]] = []
    previous = -1
    for cycle, kind in events:
        if kind == "write" and cycle > previous:
            start, end = previous + 1, min(cycle + 1, duration)
            if start < end:
                if windows and windows[-1][1] == start:
                    windows[-1] = (windows[-1][0], end)
                else:
                    windows.append((start, end))
        previous = cycle
    return windows


def liveness_map(trace: ReferenceTrace) -> dict:
    """Per-element liveness summary of the golden pass: dead
    (written-before-read) windows and never-read flags per traced
    register, first-access kind per traced memory word, plus the
    never-accessed tail implied by omission.

    The maps are keyed by register index / word address (``int`` keys on
    purpose — a JSON transport stringifies them, which is exactly what
    :meth:`repro.core.probes.GoldenSnapshots.from_payload` normalises
    back).
    """
    registers: dict[int, dict] = {}
    for register in sorted({reg for _, _, reg in trace.reg_accesses}):
        events = trace.reg_events(register)
        windows = dead_windows(events, trace.duration)
        registers[register] = {
            "accesses": len(events),
            "never_read": not any(kind == "read" for _, kind in events),
            "dead_windows": [[start, end] for start, end in windows],
            "dead_cycles": sum(end - start for start, end in windows),
        }
    memory: dict[int, dict] = {}
    for cycle, kind, address in trace.mem_accesses:
        entry = memory.setdefault(
            address, {"first_access": kind, "first_cycle": cycle, "accesses": 0}
        )
        entry["accesses"] += 1
    return {
        "duration": trace.duration,
        "registers": registers,
        "memory": memory,
    }


def normalise_liveness_payload(payload: dict | None) -> dict | None:
    """Undo JSON key stringification on a :func:`liveness_map` payload:
    the ``registers``/``memory`` maps come back keyed by ``int`` again."""
    if payload is None:
        return None
    normalised = dict(payload)
    for key in ("registers", "memory"):
        if key in normalised and isinstance(normalised[key], dict):
            normalised[key] = {
                int(index): value for index, value in normalised[key].items()
            }
    return normalised


# ----------------------------------------------------------------------
# Experiment classification
# ----------------------------------------------------------------------
_REGISTER_PREFIX = "regs.R"


@dataclass(slots=True)
class ExperimentClassifier:
    """Classifies planned experiments as prunable (no-effect by
    construction) against one reference trace."""

    config: CampaignConfig
    trace: ReferenceTrace
    space: LocationSpace
    _data_regions: list[tuple[int, int]] = field(default_factory=list)
    _enabled: bool = True
    _disabled_reason: str = ""

    def __post_init__(self) -> None:
        self._data_regions = [
            (region.base, region.limit)
            for region in self.space.memory_regions
            if region.name != "program"
        ]
        config = self.config
        if config.logging_mode != LOGGING_NORMAL:
            self._enabled = False
            self._disabled_reason = (
                "detail logging mode records per-instruction states that "
                "cannot be synthesised"
            )
        elif config.environment is not None and config.environment.get("faults"):
            self._enabled = False
            self._disabled_reason = (
                "declared environment-boundary faults make every experiment "
                "differ from the clean reference"
            )

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def disabled_reason(self) -> str:
        return self._disabled_reason

    def prunable(self, spec: ExperimentSpec) -> bool:
        """True when *every* fault of the experiment provably cannot
        have an effect: the experiment's rows equal the reference's."""
        if not self._enabled:
            return False
        return all(
            self._fault_prunable(fault, fault.trigger.resolve(self.trace))
            for fault in spec.faults
        )

    # ------------------------------------------------------------------
    def _fault_prunable(self, fault: PlannedFault, cycle: int) -> bool:
        if not is_transient(fault.model):
            return False
        location = fault.location
        if location.kind == KIND_SCAN:
            return self._scan_fault_prunable(location.element, cycle)
        if location.kind == KIND_MEMORY:
            return self._memory_fault_prunable(location.address)
        return False

    def _scan_fault_prunable(self, element: str, cycle: int) -> bool:
        """Dead-window test for a transient register flip.  Control
        state, caches and pins are always-live; never-accessed-again
        registers stay unpruned (the flip would be latent in the final
        scan capture)."""
        if not element.startswith(_REGISTER_PREFIX):
            return False
        if not 0 <= cycle < self.trace.duration:
            # At or past the end of the run the ordering against HALT is
            # ambiguous; conservatively simulate.
            return False
        events = self.trace.reg_events(
            int(element.removeprefix(_REGISTER_PREFIX))
        )
        following = first_event_at_or_after(events, cycle)
        return following is not None and following[1] == "write"

    def _memory_fault_prunable(self, address: int) -> bool:
        """Written-before-read test for a pre-runtime image corruption.
        Only sound when the run's memory traffic is fully traced (no
        environment) and the word can never be fetched (data region)."""
        if self.config.technique != TECHNIQUE_SWIFI_PRERUNTIME:
            return False
        if self.config.environment is not None:
            return False
        if not any(base <= address < limit for base, limit in self._data_regions):
            return False
        events = self.trace.mem_events(address)
        return bool(events) and events[0][1] == "write"


# ----------------------------------------------------------------------
# Row synthesis and the spot-check safety net
# ----------------------------------------------------------------------
def synthesize_record(
    config: CampaignConfig,
    spec: ExperimentSpec,
    trace: ReferenceTrace,
    reference: ExperimentRecord,
) -> ExperimentRecord:
    """The row a full simulation of a no-effect experiment would log:
    the reference run's termination and final state, with the fault list
    in injection order exactly as the experiment bodies record it."""
    schedule = [(fault.trigger.resolve(trace), fault) for fault in spec.faults]
    schedule.sort(key=lambda item: item[0])
    applied = []
    for cycle, fault in schedule:
        entry = fault.to_dict()
        entry["injection_cycle"] = cycle
        entry["applied"] = True
        applied.append(entry)
    return ExperimentRecord(
        experiment_name=spec.name,
        campaign_name=config.name,
        experiment_data={
            "technique": config.technique,
            "index": spec.index,
            "seed": spec.seed,
            "faults": applied,
        },
        state_vector={
            "termination": reference.state_vector["termination"],
            "final": reference.state_vector["final"],
        },
        pruned=True,
    )


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def records_match(expected: ExperimentRecord, actual: ExperimentRecord) -> bool:
    """Bit-identity on the JSON payloads (the provenance columns —
    timestamps, the ``pruned`` flag — are deliberately outside the
    comparison)."""
    return _canonical(expected.experiment_data) == _canonical(
        actual.experiment_data
    ) and _canonical(expected.state_vector) == _canonical(actual.state_vector)


@dataclass(slots=True)
class PrunePlan:
    """The partition of one campaign plan: experiments to simulate,
    experiments to synthesise, and the spot-check sample bridging the
    two."""

    config: PruneConfig
    planned: int
    #: Specs classified no-effect (their rows are synthesised).
    pruned_specs: list[ExperimentSpec]
    #: Specs the engines actually simulate: every unprunable spec plus
    #: the spot-check sample, in original plan order.
    to_run: list[ExperimentSpec]
    #: Names of pruned specs that are re-simulated for verification.
    spot_checks: set[str]
    #: Synthesised rows of every pruned spec, by experiment name.
    synthesized: dict[str, ExperimentRecord]
    #: Why nothing was pruned, when the classifier was disabled.
    disabled_reason: str = ""
    divergences: int = 0

    @property
    def skipped(self) -> int:
        """Simulations actually avoided."""
        return len(self.pruned_specs) - len(self.spot_checks)

    def upfront_records(self) -> list[ExperimentRecord]:
        """Synthesised rows safe to persist before the loop runs: the
        pruned specs *not* in the spot-check sample (a spot-checked row
        is only persisted once its simulation confirmed it)."""
        return [
            self.synthesized[spec.name]
            for spec in self.pruned_specs
            if spec.name not in self.spot_checks
        ]

    def verify_spot_check(
        self, name: str, simulated: ExperimentRecord
    ) -> ExperimentRecord:
        """Compare a spot-check simulation against its synthesised
        prediction; return the (confirmed) synthesised row to log, or
        hard-fail the campaign on divergence."""
        expected = self.synthesized[name]
        if not records_match(expected, simulated):
            self.divergences += 1
            parts = []
            if _canonical(expected.experiment_data) != _canonical(
                simulated.experiment_data
            ):
                parts.append("experiment data")
            if _canonical(expected.state_vector) != _canonical(
                simulated.state_vector
            ):
                parts.append("state vector")
            raise PruneDivergence(
                f"spot-check of pruned experiment {name!r} diverged from its "
                f"no-effect prediction ({' and '.join(parts)} differ); the "
                f"liveness classifier is unsound for this campaign — rerun "
                f"without --prune and report the campaign configuration"
            )
        return expected

    def report(self) -> dict:
        """The prune summary surfaced on :class:`CampaignResult` and by
        the CLI/benchmark."""
        return {
            "planned": self.planned,
            "pruned": len(self.pruned_specs),
            "skipped": self.skipped,
            "spot_checks": len(self.spot_checks),
            "spot_check_rate": self.config.spot_check_rate,
            "divergences": self.divergences,
            "disabled_reason": self.disabled_reason or None,
        }


def build_prune_plan(
    config: CampaignConfig,
    trace: ReferenceTrace,
    space: LocationSpace,
    specs: list[ExperimentSpec],
    prune_config: PruneConfig,
    reference: ExperimentRecord,
) -> PrunePlan:
    """Partition ``specs`` into simulated and synthesised experiments.

    The spot-check sample is drawn with a deterministic RNG seeded from
    the campaign seed, so the same campaign prunes and verifies the same
    experiments on every host and worker count."""
    classifier = ExperimentClassifier(config, trace, space)
    rng = random.Random(f"{config.seed}/prune")
    pruned: list[ExperimentSpec] = []
    to_run: list[ExperimentSpec] = []
    spot_checks: set[str] = set()
    synthesized: dict[str, ExperimentRecord] = {}
    for spec in specs:
        if classifier.prunable(spec):
            pruned.append(spec)
            synthesized[spec.name] = synthesize_record(
                config, spec, trace, reference
            )
            if rng.random() < prune_config.spot_check_rate:
                spot_checks.add(spec.name)
                to_run.append(spec)
        else:
            to_run.append(spec)
    return PrunePlan(
        config=prune_config,
        planned=len(specs),
        pruned_specs=pruned,
        to_run=to_run,
        spot_checks=spot_checks,
        synthesized=synthesized,
        disabled_reason=classifier.disabled_reason,
    )
