"""Campaign progress monitoring and control.

The paper's progress window (Figure 7) lets the user watch "the number
of faults injected" and "pause, restart or end the campaign".  This is
the headless equivalent: a :class:`ProgressReporter` the campaign loop
notifies after every experiment, with a control knob the observer can
flip to pause or abort.  The CLI and the examples attach simple
callbacks; tests attach recording observers.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

#: Completion timestamps kept for the rolling-throughput window.
_RATE_WINDOW = 50


def format_duration(seconds: float) -> str:
    """``90.5`` → ``"1m31s"`` — compact durations for progress lines
    and the stats report.

    Rounding happens *before* the unit-selection branches so the
    display is monotonic at the boundaries: ``59.7`` rounds to 60 and
    renders ``"1m00s"`` (not ``"60s"`` next to ``60.0``'s ``"1m00s"``),
    and ``9.96`` rounds to 10 and renders ``"10s"`` (not ``"10.0s"``).
    """
    seconds = max(0.0, seconds)
    if seconds < 10 and round(seconds, 1) < 10:
        return f"{seconds:.1f}s"
    total = int(round(seconds))
    if total < 60:
        return f"{total}s"
    minutes, secs = divmod(total, 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


@dataclass(frozen=True, slots=True)
class ProgressEvent:
    """Snapshot sent to observers after each experiment."""

    campaign_name: str
    completed: int
    total: int
    experiment_name: str
    outcome: str
    elapsed_seconds: float
    #: Rolling throughput (experiments/s) over the last
    #: ``_RATE_WINDOW`` experiments; ``0.0`` until two have finished.
    rate: float = 0.0
    #: Estimated seconds to campaign completion at the rolling rate;
    #: ``None`` until the rate is known.
    eta_seconds: float | None = None

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0


@dataclass(slots=True)
class ProgressReporter:
    """Mutable campaign progress state with observer callbacks.

    The campaign loop calls :meth:`start`, then :meth:`experiment_done`
    per experiment (which blocks while paused and raises through the
    runner when ended), then :meth:`finish`.
    """

    observers: list[Callable[[ProgressEvent], None]] = field(default_factory=list)
    poll_interval: float = 0.01

    campaign_name: str = ""
    total: int = 0
    completed: int = 0
    _paused: bool = False
    _abort_requested: bool = False
    _started_at: float = 0.0
    _recent: deque = field(default_factory=lambda: deque(maxlen=_RATE_WINDOW))

    # ------------------------------------------------------------------
    # Control (the pause / restart / end buttons)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    def end(self) -> None:
        """Request the campaign to stop after the current experiment."""
        self._abort_requested = True
        self._paused = False

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def abort_requested(self) -> bool:
        return self._abort_requested

    # ------------------------------------------------------------------
    # Campaign-loop side
    # ------------------------------------------------------------------
    def start(self, campaign_name: str, total: int) -> None:
        self.campaign_name = campaign_name
        self.total = total
        self.completed = 0
        self._abort_requested = False
        self._paused = False
        self._started_at = time.monotonic()
        self._recent.clear()

    def experiment_done(self, experiment_name: str, outcome: str) -> ProgressEvent:
        """Record one finished experiment and notify observers.  Blocks
        while paused (unless an end request arrives).  Returns the
        :class:`ProgressEvent` it sent, so the campaign loop can forward
        the rolling rate/ETA into the event stream."""
        self.completed += 1
        now = time.monotonic()
        self._recent.append(now)
        rate = 0.0
        eta: float | None = None
        if len(self._recent) >= 2:
            window = now - self._recent[0]
            if window > 0:
                rate = (len(self._recent) - 1) / window
                if self.total:
                    eta = max(self.total - self.completed, 0) / rate
        event = ProgressEvent(
            campaign_name=self.campaign_name,
            completed=self.completed,
            total=self.total,
            experiment_name=experiment_name,
            outcome=outcome,
            elapsed_seconds=now - self._started_at,
            rate=rate,
            eta_seconds=eta,
        )
        for observer in self.observers:
            observer(event)
        while self._paused and not self._abort_requested:
            time.sleep(self.poll_interval)
        return event

    def finish(self) -> None:
        self._paused = False

    @property
    def elapsed_seconds(self) -> float:
        return time.monotonic() - self._started_at if self._started_at else 0.0


def _progress_line(event: ProgressEvent) -> str:
    extra = ""
    if event.rate:
        extra = f", {event.rate:.1f} exp/s"
        if event.eta_seconds is not None and event.completed < event.total:
            extra += f", ETA {format_duration(event.eta_seconds)}"
    return (
        f"[{event.campaign_name}] {event.completed}/{event.total} "
        f"experiments ({event.fraction:.0%}){extra}, "
        f"last outcome: {event.outcome}"
    )


def console_observer(event: ProgressEvent) -> None:
    """The ``goofi run`` progress ticker.

    Writes to *stderr*, never stdout — stdout belongs to results
    (``--events`` JSONL, reports), so piped output stays
    machine-readable.  On a TTY the line is rewritten in place with a
    carriage return per experiment (the paper's live progress window);
    when stderr is not a TTY (CI logs, redirects) carriage-return
    rewriting is suppressed and one plain line is printed per block of
    50 experiments and at completion."""
    stream = sys.stderr
    if stream.isatty():
        end = "\n" if event.completed >= event.total else ""
        print(f"\r\x1b[2K{_progress_line(event)}", end=end, file=stream, flush=True)
    elif event.completed == event.total or event.completed % 50 == 0:
        print(_progress_line(event), file=stream)
