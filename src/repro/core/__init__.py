"""GOOFI core: generic fault-injection algorithms, the target-interface
framework, campaign management, fault models, triggers, locations, and
the pre-injection analysis."""

from .algorithms import (
    CampaignResult,
    FaultInjectionAlgorithms,
    register_target_system,
    store_campaign,
)
from .campaign import (
    LOGGING_DETAIL,
    LOGGING_NORMAL,
    TECHNIQUE_PINLEVEL,
    TECHNIQUE_SCIFI,
    TECHNIQUE_SWIFI_PRERUNTIME,
    TECHNIQUE_SWIFI_RUNTIME,
    TIME_BRANCH,
    TIME_CALL,
    TIME_CLOCK,
    TIME_DATA_ACCESS,
    TIME_UNIFORM,
    CampaignConfig,
    ExperimentSpec,
    PlanGenerator,
    PlannedFault,
    experiment_name,
    merge_campaigns,
)
from .checkpoint import (
    DEFAULT_CHECKPOINT_CAPACITY,
    Checkpoint,
    CheckpointCache,
    CheckpointStats,
    first_injection_cycle,
    sort_plan_by_first_injection,
)
from .errors import (
    AnalysisError,
    CampaignAborted,
    ConfigurationError,
    GoofiError,
    TargetError,
)
from .events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    NULL_EVENTS,
    DatagramEventSink,
    EventBus,
    EventSink,
    JsonlEventSink,
    events_destination_sink,
    iter_jsonl,
    resolve_events,
)
from .faultmodels import (
    FaultModel,
    IntermittentBitFlip,
    StuckAt,
    TransientBitFlip,
    model_from_dict,
)
from .framework import (
    ObservationSpec,
    TargetSystemInterface,
    Termination,
    TerminationInfo,
)
from .liveness import (
    DEFAULT_SPOT_CHECK_RATE,
    ExperimentClassifier,
    PruneConfig,
    PruneDivergence,
    PrunePlan,
    build_prune_plan,
    dead_windows,
    liveness_map,
    normalise_liveness_payload,
    resolve_prune,
)
from .locations import (
    Location,
    LocationSelection,
    LocationSpace,
    MemoryRegionInfo,
    ScanElementInfo,
)
from .plugins import (
    create_environment,
    create_target,
    register_environment,
    register_target,
    register_technique,
    registered_environments,
    registered_targets,
    registered_techniques,
)
from .packs import (
    DependabilityBounds,
    FaultPack,
    SamplePlan,
    load_pack,
    loads_pack,
    replay_function,
    save_pack,
)
from .parallel import ParallelCampaignRunner, WorkerFailure
from .preinjection import LivenessAnalysis, PreInjectionFilter
from .probes import (
    DEFAULT_PROBE_PERIOD,
    GoldenSnapshots,
    ProbeConfig,
    ProbeSession,
    location_class,
    resolve_probes,
)
from .profiling import (
    ProfileCollector,
    format_profile_report,
    merge_profile_stats,
    profile_summary,
)
from .progress import (
    ProgressEvent,
    ProgressReporter,
    console_observer,
    format_duration,
)
from .resources import (
    COORDINATOR_WORKER,
    DEFAULT_RESOURCE_PERIOD,
    RESOURCE_SAMPLE_KEYS,
    ResourceConfig,
    ResourceSampler,
    resolve_resources,
)
from .telemetry import (
    MODE_METRICS,
    MODE_OFF,
    MODE_SPANS,
    NULL_TELEMETRY,
    MetricsRegistry,
    Telemetry,
    resolve_telemetry,
)
from .triggers import (
    BranchTrigger,
    BreakpointTrigger,
    CallTrigger,
    ClockTrigger,
    DataAccessTrigger,
    ReferenceTrace,
    TimeTrigger,
    Trigger,
    trigger_from_dict,
)

__all__ = [name for name in dir() if not name.startswith("_")]
