"""Campaign telemetry: metrics registry, per-experiment spans, sinks.

The paper's only runtime observability is the progress window
(Figure 7).  After the parallel, checkpoint, and hot-loop engines, a
campaign run is three interacting optimisation layers deep — this
module makes them measurable without perturbing them:

* :class:`MetricsRegistry` — a lightweight in-process registry of
  counters, gauges, monotonic-clock timers, and fixed-bucket
  histograms.  Snapshots are plain JSON-able dicts that *merge*:
  parallel workers ship their registries back to the coordinator,
  which folds them into one campaign-level snapshot.
* :class:`Telemetry` — the per-run handle the campaign engines carry.
  Three modes: ``off`` (the default; every operation is a no-op on
  shared null objects, so the disabled cost is a single attribute
  check), ``metrics`` (aggregate phase timers and counters only), and
  ``spans`` (metrics plus one structured record per experiment
  covering the pipeline phases).
* Sinks — span records and the final snapshot can stream to a JSONL
  file for ad-hoc runs; campaign runs persist them into the database
  (``CampaignTelemetry`` / ``ExperimentSpan`` tables).

Telemetry must never influence results: nothing in here touches target
state, rows stay bit-identical in all three modes, and only wall-clock
(non-deterministic) quantities live in timers — deterministic counters
(experiments, injections, instructions) aggregate to identical totals
for any worker count.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .errors import ConfigurationError

#: Telemetry modes, in increasing order of detail.
MODE_OFF = "off"
MODE_METRICS = "metrics"
MODE_SPANS = "spans"

_MODES = (MODE_OFF, MODE_METRICS, MODE_SPANS)

#: Default bucket upper bounds (seconds) for duration histograms —
#: roughly logarithmic from 1 ms to 30 s; the last bucket is open.
DURATION_BUCKETS = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0)


class Histogram:
    """A fixed-bucket histogram: ``bounds`` are inclusive upper edges,
    plus one open overflow bucket.  Cheap to observe (bisection-free
    linear scan is fine for ~10 buckets) and trivially mergeable."""

    __slots__ = ("bounds", "counts")

    def __init__(self, bounds: tuple[float, ...] = DURATION_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def to_dict(self) -> dict:
        return {"bounds": list(self.bounds), "counts": list(self.counts)}

    def merge(self, other: dict) -> None:
        if tuple(other["bounds"]) != self.bounds:
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds"
            )
        for index, count in enumerate(other["counts"]):
            self.counts[index] += count


class TimerStat:
    """Accumulated monotonic-clock time for one named phase."""

    __slots__ = ("seconds", "count")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.count = 0

    def add(self, seconds: float) -> None:
        self.seconds += seconds
        self.count += 1

    def to_dict(self) -> dict:
        return {"seconds": self.seconds, "count": self.count}


class _TimerContext:
    """Context manager accumulating one timed block straight into a
    :class:`TimerStat`.  Registries cache one per timer name (phases
    with the same name never nest), so the metrics-mode hot path
    allocates nothing after the first experiment."""

    __slots__ = ("_stat", "_started")

    def __init__(self, stat: "TimerStat") -> None:
        self._stat = stat

    def __enter__(self) -> "_TimerContext":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stat.add(time.perf_counter() - self._started)


class _SpanPhaseContext:
    """Timed block for a full :class:`ExperimentSpan` phase: feeds the
    registry timer *and* the span's own phase dict."""

    __slots__ = ("_span", "_name", "_started")

    def __init__(self, span: "ExperimentSpan", name: str) -> None:
        self._span = span
        self._name = name

    def __enter__(self) -> "_SpanPhaseContext":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._span._record_phase(
            self._name, time.perf_counter() - self._started
        )


class _NullContext:
    """Shared no-op context manager (the disabled-telemetry fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class MetricsRegistry:
    """In-process metrics: counters, gauges, timers, histograms.

    All values are JSON-able; :meth:`snapshot` and :meth:`merge` are
    exact inverses of each other for counters, timers, and histograms
    (gauges merge by keeping the maximum, which suits the high-water
    quantities we track).
    """

    __slots__ = ("counters", "gauges", "timers", "histograms", "_contexts")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.timers: dict[str, TimerStat] = {}
        self.histograms: dict[str, Histogram] = {}
        self._contexts: dict[str, _TimerContext] = {}

    # -- counters ------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    # -- gauges --------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    # -- timers --------------------------------------------------------
    def add_time(self, name: str, seconds: float) -> None:
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        stat.add(seconds)

    def time(self, name: str) -> _TimerContext:
        """``with registry.time("phase.plan"): ...`` — the context is
        cached per name and reused (same-name blocks never nest)."""
        context = self._contexts.get(name)
        if context is None:
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = TimerStat()
            context = self._contexts[name] = _TimerContext(stat)
        return context

    # -- histograms ----------------------------------------------------
    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] = DURATION_BUCKETS) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds)
        histogram.observe(value)

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-able dump of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: stat.to_dict() for name, stat in self.timers.items()},
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in self.histograms.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one (the
        coordinator aggregating worker registries)."""
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            if name not in self.gauges or value > self.gauges[name]:
                self.gauges[name] = value
        for name, stat in snapshot.get("timers", {}).items():
            timer = self.timers.get(name)
            if timer is None:
                timer = self.timers[name] = TimerStat()
            timer.seconds += stat["seconds"]
            timer.count += stat["count"]
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram(tuple(data["bounds"]))
            histogram.merge(data)


class NullSpan:
    """Span stand-in when telemetry is off: every method is a no-op and
    ``phase`` hands back one shared context manager."""

    __slots__ = ()

    def phase(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def add(self, name: str, value: float = 1) -> None:
        return None

    def finish(self, outcome: str | None = None) -> None:
        return None


NULL_SPAN = NullSpan()

#: Memoised ``"phase." + name`` keys — the phase names form a tiny
#: fixed set, so the per-experiment hot path never formats strings.
_PHASE_KEYS: dict[str, str] = {}


def _phase_key(name: str) -> str:
    key = _PHASE_KEYS.get(name)
    if key is None:
        key = _PHASE_KEYS[name] = "phase." + name
    return key


class MetricsSpan:
    """Metrics-only span: phase timings and counters flow straight into
    the registry under ``phase.<name>`` / plain counter names; no
    per-experiment record is built."""

    __slots__ = ("_registry", "_started")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._started = time.perf_counter()

    def phase(self, name: str) -> _TimerContext:
        return self._registry.time(_phase_key(name))

    def add(self, name: str, value: float = 1) -> None:
        self._registry.inc(name, value)

    def finish(self, outcome: str | None = None) -> None:
        self._registry.inc("experiments")
        self._registry.observe(
            "experiment.seconds", time.perf_counter() - self._started
        )


class ExperimentSpan(MetricsSpan):
    """Full span: feeds the registry like :class:`MetricsSpan` *and*
    builds one structured record of the experiment's pipeline phases.

    Besides the aggregate ``phases`` dict the record carries a wall-clock
    ``started_at`` timestamp and an ``events`` list of individual timed
    phase blocks ``[name, offset_seconds, duration_seconds]`` (offsets
    relative to the span start) — enough to reconstruct the experiment's
    timeline in a Chrome/Perfetto trace (``goofi trace export``)."""

    __slots__ = ("name", "phases", "counters", "outcome", "started_at",
                 "events", "_telemetry")

    def __init__(self, name: str, telemetry: "Telemetry") -> None:
        super().__init__(telemetry.metrics)
        self.name = name
        self.phases: dict[str, float] = {}
        self.counters: dict[str, float] = {}
        self.outcome: str | None = None
        self.started_at = time.time()
        self.events: list[list] = []
        self._telemetry = telemetry

    def phase(self, name: str) -> _SpanPhaseContext:
        return _SpanPhaseContext(self, name)

    def _record_phase(self, name: str, seconds: float) -> None:
        self._registry.add_time(_phase_key(name), seconds)
        self.phases[name] = self.phases.get(name, 0.0) + seconds
        offset = time.perf_counter() - seconds - self._started
        self.events.append([name, round(max(offset, 0.0), 9), round(seconds, 9)])

    def add(self, name: str, value: float = 1) -> None:
        self._registry.inc(name, value)
        self.counters[name] = self.counters.get(name, 0) + value

    def finish(self, outcome: str | None = None) -> None:
        super().finish()
        self.outcome = outcome
        self._telemetry._collect(
            {
                "experiment": self.name,
                "outcome": outcome,
                "started_at": self.started_at,
                "duration_seconds": time.perf_counter() - self._started,
                "phases": {name: round(s, 9) for name, s in self.phases.items()},
                "events": self.events,
                "counters": dict(self.counters),
            }
        )


class Telemetry:
    """The per-run telemetry handle the campaign engines carry.

    ``mode`` selects how much is recorded; ``jsonl_path`` additionally
    streams span records (and, on :meth:`write_snapshot`, the final
    metric snapshot) to a JSON-lines file for ad-hoc runs without a
    database."""

    __slots__ = ("mode", "metrics", "jsonl_path", "_spans", "_jsonl_file")

    def __init__(self, mode: str = MODE_OFF, jsonl_path: str | Path | None = None) -> None:
        if mode not in _MODES:
            raise ConfigurationError(
                f"unknown telemetry mode {mode!r}; expected one of {_MODES}"
            )
        self.mode = mode
        self.metrics = MetricsRegistry()
        self.jsonl_path = str(jsonl_path) if jsonl_path else None
        self._spans: list[dict] = []
        self._jsonl_file = None

    # -- mode ----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.mode != MODE_OFF

    @property
    def spans_enabled(self) -> bool:
        return self.mode == MODE_SPANS

    # -- spans ---------------------------------------------------------
    def span(self, name: str):
        """A span for one experiment: a :class:`NullSpan`,
        :class:`MetricsSpan`, or :class:`ExperimentSpan` depending on
        the mode — callers never branch on it."""
        if self.mode == MODE_SPANS:
            return ExperimentSpan(name, self)
        if self.mode == MODE_METRICS:
            return MetricsSpan(self.metrics)
        return NULL_SPAN

    def _collect(self, record: dict) -> None:
        self._spans.append(record)
        if self.jsonl_path is not None:
            self._write_jsonl({"kind": "span", **record})

    def drain_spans(self) -> list[dict]:
        """Hand over (and forget) the span records finished since the
        last drain — the campaign loop persists them in batches; the
        parallel workers ship them with each result message."""
        spans, self._spans = self._spans, []
        return spans

    # -- timers convenience --------------------------------------------
    def time(self, name: str):
        """Registry timer, or a shared no-op when disabled."""
        if self.mode == MODE_OFF:
            return _NULL_CONTEXT
        return self.metrics.time(name)

    # -- sinks ---------------------------------------------------------
    def _write_jsonl(self, payload: dict) -> None:
        if self._jsonl_file is None:
            self._jsonl_file = open(self.jsonl_path, "a", encoding="utf-8")
        self._jsonl_file.write(json.dumps(payload, sort_keys=True) + "\n")
        self._jsonl_file.flush()

    def write_snapshot(self) -> dict:
        """Final snapshot of the registry; also appended to the JSONL
        sink when one is configured."""
        snapshot = self.metrics.snapshot()
        if self.jsonl_path is not None:
            self._write_jsonl({"kind": "metrics", "snapshot": snapshot})
        return snapshot

    def close(self) -> None:
        if self._jsonl_file is not None:
            self._jsonl_file.close()
            self._jsonl_file = None


#: Shared disabled instance — the default on the campaign engines, so
#: the un-instrumented path costs one attribute read per call site.
NULL_TELEMETRY = Telemetry(MODE_OFF)


def resolve_telemetry(value, jsonl_path: str | Path | None = None) -> Telemetry:
    """Normalise the ``run_campaign(telemetry=...)`` knob.

    Accepts a ready :class:`Telemetry`, a mode string (``"off"`` /
    ``"metrics"`` / ``"spans"``), a boolean (``True`` → metrics), or
    ``None`` (off — unless a JSONL path is given, which implies spans,
    the mode that actually produces per-line records).
    """
    if isinstance(value, Telemetry):
        return value
    if value is None:
        if jsonl_path is not None:
            return Telemetry(MODE_SPANS, jsonl_path)
        return NULL_TELEMETRY
    if value is False:
        return NULL_TELEMETRY
    if value is True:
        return Telemetry(MODE_METRICS, jsonl_path)
    if isinstance(value, str):
        if value == MODE_OFF and jsonl_path is None:
            return NULL_TELEMETRY
        return Telemetry(value, jsonl_path)
    raise ConfigurationError(
        f"telemetry must be a mode string, bool, or Telemetry; got {value!r}"
    )
