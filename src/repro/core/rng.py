"""Deterministic random-number plumbing.

Every stochastic choice in a campaign (fault locations, injection times,
intermittent-fault activations) derives from the campaign seed, so a
campaign re-run with the same seed produces the same experiment plan —
the property that makes the ``parentExperiment`` re-run workflow of the
paper (re-running experiment E1 as E2 in detail mode) reproduce the same
fault.
"""

from __future__ import annotations

import numpy as np


def campaign_rng(seed: int) -> np.random.Generator:
    """The plan-generation stream of a campaign."""
    return np.random.default_rng(seed)


def experiment_seed(campaign_seed: int, index: int) -> int:
    """A stable per-experiment sub-seed (for intermittent fault
    activations and any other in-run randomness)."""
    mixed = np.random.SeedSequence([campaign_seed, index]).generate_state(1)[0]
    return int(mixed)
