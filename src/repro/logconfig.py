"""Library logging policy and the CLI's verbosity switch.

``repro`` follows the standard library-logging etiquette: the package
root logger gets a :class:`logging.NullHandler` on import (done in
:mod:`repro.__init__`), modules log through ``logging.getLogger(
__name__)``, and nothing below the CLI ever calls ``basicConfig`` or
touches handlers — an embedding application keeps full control.

:func:`setup_logging` is the one place a handler is attached: the
``goofi`` entry point calls it with the count of ``-v``/``-q`` flags.
"""

from __future__ import annotations

import logging
import sys

#: The package root logger every repro module hangs under.
ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def setup_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root logger.

    ``verbosity`` follows the usual CLI convention: ``0`` → WARNING
    (default), ``1`` (``-v``) → INFO, ``2+`` (``-vv``) → DEBUG, and
    negative (``-q``) → ERROR.  Calling it again replaces the handler
    instead of stacking duplicates, so tests and REPL sessions can
    re-invoke it freely.
    """
    if verbosity >= 2:
        level = logging.DEBUG
    elif verbosity == 1:
        level = logging.INFO
    elif verbosity < 0:
        level = logging.ERROR
    else:
        level = logging.WARNING
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if isinstance(handler, logging.StreamHandler) and getattr(
            handler, "_repro_cli", False
        ):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_cli = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    return logger
