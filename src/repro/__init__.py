"""GOOFI reproduction: a Generic Object-Oriented Fault Injection tool.

A complete Python reproduction of *GOOFI: Generic Object-Oriented Fault
Injection Tool* (Aidemark, Vinter, Folkesson, Karlsson — DSN 2001),
including the target system it needs: a simulated THOR-RD-like
microprocessor with scan-chain test logic, parity-protected caches, and
hardware error-detection mechanisms.

Quickstart::

    from repro import GoofiSession, CampaignConfig, TransientBitFlip

    with GoofiSession("goofi.db") as session:
        config = CampaignConfig(
            name="demo",
            target="thor-rd-sim",
            technique="scifi",
            workload="bubble_sort",
            location_patterns=("internal:regs.*",),
            num_experiments=100,
            termination=session.default_termination("bubble_sort"),
            observation=session.default_observation("bubble_sort"),
            seed=42,
        )
        session.setup_campaign(config)
        session.run_campaign("demo")
        print(session.report("demo"))
"""

from __future__ import annotations

import logging as _logging

# Library-logging etiquette: the package stays silent unless the
# application (or ``goofi`` via repro.logconfig.setup_logging) attaches
# a handler.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from .core import plugins as _plugins
from .core import (
    BranchTrigger,
    BreakpointTrigger,
    CallTrigger,
    CampaignConfig,
    CampaignResult,
    ClockTrigger,
    ConfigurationError,
    DataAccessTrigger,
    FaultInjectionAlgorithms,
    GoofiError,
    IntermittentBitFlip,
    Location,
    LocationSpace,
    ObservationSpec,
    ProgressReporter,
    StuckAt,
    TargetError,
    TargetSystemInterface,
    Telemetry,
    Termination,
    TimeTrigger,
    TransientBitFlip,
    console_observer,
    merge_campaigns,
    register_target_system,
    resolve_telemetry,
    store_campaign,
)
from .db import GoofiDatabase
from .logconfig import setup_logging
from .session import GoofiSession

__version__ = "1.0.0"


def _register_builtins() -> None:
    """Register the built-in target, techniques, and environment
    simulators.  Idempotent: safe across repeated imports and test
    registry resets."""
    from .targets.stack.interface import TARGET_NAME as STACK_TARGET_NAME
    from .targets.stack.interface import create_stack_target
    from .targets.thor.interface import TARGET_NAME, create_thor_target
    from .workloads.envsim import DCMotor, WaterTank

    if TARGET_NAME not in _plugins.registered_targets():
        _plugins.register_target(TARGET_NAME, create_thor_target)
    if STACK_TARGET_NAME not in _plugins.registered_targets():
        _plugins.register_target(STACK_TARGET_NAME, create_stack_target)
    technique_methods = {
        "scifi": "fault_injector_scifi",
        "swifi_preruntime": "fault_injector_swifi_preruntime",
        "swifi_runtime": "fault_injector_swifi_runtime",
        "pinlevel": "fault_injector_pinlevel",
    }
    for name, method in technique_methods.items():
        if name not in _plugins.registered_techniques():
            _plugins.register_technique(name, method)
    environments = {"dc_motor": DCMotor, "water_tank": WaterTank}
    for name, factory in environments.items():
        if name not in _plugins.registered_environments():
            _plugins.register_environment(name, factory)


_register_builtins()

__all__ = [
    "BranchTrigger",
    "BreakpointTrigger",
    "CallTrigger",
    "CampaignConfig",
    "CampaignResult",
    "ClockTrigger",
    "ConfigurationError",
    "DataAccessTrigger",
    "FaultInjectionAlgorithms",
    "GoofiDatabase",
    "GoofiError",
    "GoofiSession",
    "IntermittentBitFlip",
    "Location",
    "LocationSpace",
    "ObservationSpec",
    "ProgressReporter",
    "StuckAt",
    "TargetError",
    "TargetSystemInterface",
    "Telemetry",
    "Termination",
    "TimeTrigger",
    "TransientBitFlip",
    "console_observer",
    "merge_campaigns",
    "register_target_system",
    "resolve_telemetry",
    "setup_logging",
    "store_campaign",
    "__version__",
]
