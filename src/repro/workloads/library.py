"""The workload library: named, assembled workload images.

The set-up phase "selects the target system workload" by name; the
target interface resolves the name through this library.  Sources come
from :mod:`repro.workloads.programs` (self-terminating benchmarks) and
:mod:`repro.workloads.control` (infinite-loop control applications);
images are assembled once and cached.
"""

from __future__ import annotations

from functools import lru_cache

from ..targets.thor.assembler import Assembler, Program
from .control import CONTROL_SOURCES
from .programs import PROGRAM_SOURCES

#: All workload sources by name.
SOURCES: dict[str, str] = {**PROGRAM_SOURCES, **CONTROL_SOURCES}

#: Workloads that run as an infinite loop and need an iteration limit.
LOOP_WORKLOADS = frozenset(CONTROL_SOURCES)


def workload_names() -> list[str]:
    return sorted(SOURCES)


@lru_cache(maxsize=None)
def load(name: str) -> Program:
    """Assemble (and cache) the named workload."""
    try:
        source = SOURCES[name]
    except KeyError:
        known = ", ".join(workload_names())
        raise KeyError(f"unknown workload {name!r}; available: {known}") from None
    return Assembler().assemble(source)


def is_loop_workload(name: str) -> bool:
    return name in LOOP_WORKLOADS
