"""Workloads and environment simulators for the simulated target."""

from .control import ControlParameters, protected_source, unprotected_source
from .envsim import DCMotor, WaterTank, replay_dc_motor
from .library import is_loop_workload, load, workload_names
from .programs import expected_output

__all__ = [
    "ControlParameters",
    "DCMotor",
    "WaterTank",
    "expected_output",
    "is_loop_workload",
    "load",
    "protected_source",
    "replay_dc_motor",
    "unprotected_source",
    "workload_names",
]
