"""Workloads and environment simulators for the simulated target."""

from .control import ControlParameters, protected_source, unprotected_source
from .envsim import (
    REPLAY_FUNCTIONS,
    DCMotor,
    EnvFaultConfig,
    EnvironmentFaultInjector,
    WaterTank,
    replay_dc_motor,
    replay_water_tank,
    wrap_environment,
)
from .library import is_loop_workload, load, workload_names
from .programs import expected_output

__all__ = [
    "REPLAY_FUNCTIONS",
    "ControlParameters",
    "DCMotor",
    "EnvFaultConfig",
    "EnvironmentFaultInjector",
    "WaterTank",
    "expected_output",
    "is_loop_workload",
    "load",
    "protected_source",
    "replay_dc_motor",
    "replay_water_tank",
    "unprotected_source",
    "workload_names",
    "wrap_environment",
]
