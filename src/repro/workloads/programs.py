"""Self-terminating benchmark workloads in THOR-RD-sim assembly.

These play the role of the paper's "target system workload": small,
deterministic programs with a well-defined result that the analysis
phase can compare against the reference run.  Every program writes its
result value(s) to output port 1 and leaves its working data in the data
area, so both the output log and the final memory state carry error
signatures.

The golden results (``EXPECTED_OUTPUTS``) are computed independently in
pure Python by :func:`expected_output`, which the test suite uses to
prove simulator, assembler, and workload agree.
"""

from __future__ import annotations

BUBBLE_SORT = """
; Bubble sort of 16 words followed by a position-weighted checksum.
_start:
    LDI r1, =array
    LDI r2, 16          ; n
outer:
    CMPI r2, 1
    BLE  done_sort
    LDI r3, 0           ; i
    MOV r4, r2
    ADDI r4, r4, -1     ; limit = n - 1
inner:
    CMP r3, r4
    BGE end_inner
    ADD r5, r1, r3
    LD r6, [r5]
    LD r7, [r5+1]
    CMP r6, r7
    BLE no_swap
    ST r7, [r5]
    ST r6, [r5+1]
no_swap:
    ADDI r3, r3, 1
    BR inner
end_inner:
    ADDI r2, r2, -1
    BR outer
done_sort:
    LDI r3, 0           ; i
    LDI r8, 0           ; checksum
    LDI r2, 16
chk:
    CMP r3, r2
    BGE emit
    ADD r5, r1, r3
    LD r6, [r5]
    ADDI r7, r3, 1
    MUL r6, r6, r7
    ADD r8, r8, r6
    ADDI r3, r3, 1
    BR chk
emit:
    OUT r8, 1
    HALT
.data
array: .word 170, 45, 75, 90, 802, 24, 2, 66, 17, 93, 4, 55, 31, 8, 250, 121
"""

BUBBLE_SORT_DATA = [170, 45, 75, 90, 802, 24, 2, 66, 17, 93, 4, 55, 31, 8, 250, 121]


MATMUL = """
; 4x4 integer matrix multiply C = A * B, then the sum of C.
_start:
    LDI r1, =A
    LDI r2, =B
    LDI r3, =C
    LDI r4, 0           ; i
row:
    CMPI r4, 4
    BGE msum
    LDI r5, 0           ; j
col:
    CMPI r5, 4
    BGE next_row
    LDI r6, 0           ; acc
    LDI r7, 0           ; k
dot:
    CMPI r7, 4
    BGE store_c
    LDI r8, 4
    MUL r9, r4, r8
    ADD r9, r9, r7
    ADD r9, r9, r1
    LD r10, [r9]
    MUL r11, r7, r8
    ADD r11, r11, r5
    ADD r11, r11, r2
    LD r12, [r11]
    MUL r10, r10, r12
    ADD r6, r6, r10
    ADDI r7, r7, 1
    BR dot
store_c:
    LDI r8, 4
    MUL r9, r4, r8
    ADD r9, r9, r5
    ADD r9, r9, r3
    ST r6, [r9]
    ADDI r5, r5, 1
    BR col
next_row:
    ADDI r4, r4, 1
    BR row
msum:
    LDI r5, 0
    LDI r6, 0
csum:
    CMPI r5, 16
    BGE emit
    ADD r7, r3, r5
    LD r8, [r7]
    ADD r6, r6, r8
    ADDI r5, r5, 1
    BR csum
emit:
    OUT r6, 1
    HALT
.data
A: .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
B: .word 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32
C: .space 16
"""

MATMUL_A = [[1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 12], [13, 14, 15, 16]]
MATMUL_B = [[17, 18, 19, 20], [21, 22, 23, 24], [25, 26, 27, 28], [29, 30, 31, 32]]


CRC32 = """
; Bitwise CRC-32 (IEEE polynomial, reflected) over 8 data words.
_start:
    LDI r1, 0
    NOT r1, r1          ; crc = 0xFFFFFFFF
    LDI r2, 0x8320
    LDIH r2, 0xEDB8     ; polynomial 0xEDB88320
    LDI r3, =data
    LDI r4, 8           ; word count
    LDI r11, 1
word_loop:
    CMPI r4, 0
    BLE finish
    LD r5, [r3]
    XOR r1, r1, r5
    LDI r6, 32
bit_loop:
    CMPI r6, 0
    BLE next_word
    AND r7, r1, r11
    SHR r1, r1, r11
    CMPI r7, 0
    BEQ skip_xor
    XOR r1, r1, r2
skip_xor:
    ADDI r6, r6, -1
    BR bit_loop
next_word:
    ADDI r3, r3, 1
    ADDI r4, r4, -1
    BR word_loop
finish:
    NOT r1, r1
    OUT r1, 1
    HALT
.data
data: .word 0x12345678, 0xDEADBEEF, 0x0BADF00D, 0xCAFEBABE, 305419896, 42, 0xFFFFFFFF, 0
"""

CRC32_DATA = [0x12345678, 0xDEADBEEF, 0x0BADF00D, 0xCAFEBABE, 305419896, 42, 0xFFFFFFFF, 0]


FIBONACCI = """
; 24 iterations of the Fibonacci recurrence.
_start:
    LDI r1, 0
    LDI r2, 1
    LDI r3, 24
fib:
    CMPI r3, 0
    BLE done
    ADD r4, r1, r2
    MOV r1, r2
    MOV r2, r4
    ADDI r3, r3, -1
    BR fib
done:
    STA r1, fib_out
    OUT r1, 1
    HALT
.data
fib_out: .word 0
"""


DOTPROD = """
; Dot product of two 12-vectors using a subroutine per element
; (exercises CALL/RET, the stack, and the subprogram-call trigger).
_start:
    LDI r1, =X
    LDI r2, =Y
    LDI r3, 12
    LDI r4, 0           ; accumulator
    LDI r5, 0           ; index
loop:
    CMP r5, r3
    BGE done
    CALL mac
    ADDI r5, r5, 1
    BR loop
done:
    OUT r4, 1
    HALT
mac:
    ADD r6, r1, r5
    LD r7, [r6]
    ADD r6, r2, r5
    LD r8, [r6]
    MUL r7, r7, r8
    ADD r4, r4, r7
    RET
.data
X: .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8
Y: .word 2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5
"""

DOTPROD_X = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8]
DOTPROD_Y = [2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5]


INSERTION_SORT = """
; Insertion sort of 16 words, then a position-weighted checksum.
_start:
    LDI r1, =arr
    LDI r2, 1           ; i
outer:
    CMPI r2, 16
    BGE checksum
    ADD r4, r1, r2
    LD r5, [r4]         ; key
    MOV r6, r2          ; j
inner:
    CMPI r6, 0
    BLE place
    ADD r4, r1, r6
    LD r7, [r4-1]
    CMP r7, r5
    BLE place
    ST r7, [r4]
    ADDI r6, r6, -1
    BR inner
place:
    ADD r4, r1, r6
    ST r5, [r4]
    ADDI r2, r2, 1
    BR outer
checksum:
    LDI r2, 0
    LDI r8, 0
chk:
    CMPI r2, 16
    BGE emit
    ADD r4, r1, r2
    LD r5, [r4]
    ADDI r6, r2, 1
    MUL r5, r5, r6
    ADD r8, r8, r5
    ADDI r2, r2, 1
    BR chk
emit:
    OUT r8, 1
    HALT
.data
arr: .word 9, 1, 44, 3, 88, 12, 7, 65, 23, 5, 91, 30, 2, 77, 50, 18
"""

INSERTION_SORT_DATA = [9, 1, 44, 3, 88, 12, 7, 65, 23, 5, 91, 30, 2, 77, 50, 18]


SIEVE = """
; Sieve of Eratosthenes: count the primes up to 100.
_start:
    LDI r1, =flags
    LDI r2, 2           ; p
outer:
    MUL r3, r2, r2      ; p*p
    CMPI r3, 100
    BGT count
    ADD r4, r1, r2
    LD r5, [r4]
    CMPI r5, 0
    BNE next_p
mark:
    CMPI r3, 100
    BGT next_p
    ADD r4, r1, r3
    LDI r5, 1
    ST r5, [r4]
    ADD r3, r3, r2
    BR mark
next_p:
    ADDI r2, r2, 1
    BR outer
count:
    LDI r2, 2
    LDI r6, 0
cloop:
    CMPI r2, 100
    BGT done
    ADD r4, r1, r2
    LD r5, [r4]
    CMPI r5, 0
    BNE skip
    ADDI r6, r6, 1
skip:
    ADDI r2, r2, 1
    BR cloop
done:
    OUT r6, 1
    STA r6, nprimes
    HALT
.data
flags: .space 101
nprimes: .word 0
"""


ADC_FILTER = """
; Poll input pin IN0 64 times, average, offset, report.  The input
; latch is a boundary-scan pin cell: the workload every pin-level
; injection campaign wants (a consumer of pin state).
_start:
    LDI r2, 0           ; sum
    LDI r3, 64          ; samples
loop:
    IN r1, 0
    ADD r2, r2, r1
    ADDI r3, r3, -1
    CMPI r3, 0
    BGT loop
    LDI r4, 6
    SHR r2, r2, r4      ; /64
    ADDI r2, r2, 100    ; calibration offset
    OUT r2, 1
    STA r2, result
    HALT
.data
result: .word 0
"""


TASK_EXECUTIVE = """
; A miniature cyclic executive: two tasks share the processor under a
; round-robin dispatcher.  Every dispatch goes through the instruction
; at `task_switch`, which is the hook the paper's future-work
; "when task switches occur" trigger attaches to.
_start:
    LDI r10, 24         ; total dispatches (12 per task)
scheduler:
    CMPI r10, 0
    BLE done
task_switch:
    LDA r11, current    ; 0 -> task A, 1 -> task B
    CMPI r11, 0
    BNE run_b
    CALL task_a
    LDI r11, 1
    BR dispatched
run_b:
    CALL task_b
    LDI r11, 0
dispatched:
    STA r11, current
    ADDI r10, r10, -1
    BR scheduler
done:
    LDA r1, sum_a
    OUT r1, 1
    LDA r2, acc_b
    OUT r2, 1
    HALT

task_a:                 ; accumulates 1 + 2 + ... per activation
    LDA r1, count_a
    ADDI r1, r1, 1
    STA r1, count_a
    LDA r2, sum_a
    ADD r2, r2, r1
    STA r2, sum_a
    RET

task_b:                 ; xor-rotate signature over its activations
    LDA r3, acc_b
    LDA r4, count_b
    ADDI r4, r4, 1
    STA r4, count_b
    XOR r3, r3, r4
    LDI r5, 3
    SHL r3, r3, r5
    LDA r6, mask
    AND r3, r3, r6
    STA r3, acc_b
    RET
.data
current: .word 0
count_a: .word 0
sum_a:   .word 0
count_b: .word 0
acc_b:   .word 0
mask:    .word 0xFFFF
"""


#: The self-terminating benchmark sources by workload name.
PROGRAM_SOURCES: dict[str, str] = {
    "bubble_sort": BUBBLE_SORT,
    "matmul": MATMUL,
    "crc32": CRC32,
    "fibonacci": FIBONACCI,
    "dotprod": DOTPROD,
    "insertion_sort": INSERTION_SORT,
    "sieve": SIEVE,
    "adc_filter": ADC_FILTER,
    "task_executive": TASK_EXECUTIVE,
}


def _crc32_reference(words: list[int]) -> int:
    crc = 0xFFFFFFFF
    poly = 0xEDB88320
    for word in words:
        crc ^= word & 0xFFFFFFFF
        for _ in range(32):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
    return crc ^ 0xFFFFFFFF


def _fibonacci_reference(iterations: int) -> int:
    a, b = 0, 1
    for _ in range(iterations):
        a, b = b, a + b
    return a


def expected_output(workload: str) -> int:
    """The golden port-1 result of a benchmark workload, computed in
    pure Python (independent of simulator and assembler)."""
    if workload == "bubble_sort":
        ordered = sorted(BUBBLE_SORT_DATA)
        return sum(value * (i + 1) for i, value in enumerate(ordered)) & 0xFFFFFFFF
    if workload == "matmul":
        total = 0
        for i in range(4):
            for j in range(4):
                total += sum(MATMUL_A[i][k] * MATMUL_B[k][j] for k in range(4))
        return total & 0xFFFFFFFF
    if workload == "crc32":
        return _crc32_reference(CRC32_DATA)
    if workload == "fibonacci":
        return _fibonacci_reference(24) & 0xFFFFFFFF
    if workload == "dotprod":
        return sum(x * y for x, y in zip(DOTPROD_X, DOTPROD_Y)) & 0xFFFFFFFF
    if workload == "insertion_sort":
        ordered = sorted(INSERTION_SORT_DATA)
        return sum(value * (i + 1) for i, value in enumerate(ordered)) & 0xFFFFFFFF
    if workload == "sieve":
        flags = [False] * 101
        primes = 0
        for p in range(2, 101):
            if not flags[p]:
                primes += 1
                for multiple in range(p * p, 101, p):
                    flags[multiple] = True
        return primes
    if workload == "adc_filter":
        return 100  # 64 samples of the quiescent (0) input, plus offset
    if workload == "task_executive":
        # Port 1 carries two values; the golden check compares the last
        # one (task B's signature); task A's sum is 1+..+12.
        acc = 0
        for activation in range(1, 13):
            acc = ((acc ^ activation) << 3) & 0xFFFF
        return acc
    raise KeyError(f"no expected output for workload {workload!r}")
