"""The control application (companion study, paper ref [12]).

"So far, GOOFI has been used with the SCIFI technique for a control
application executing on the Thor microprocessor" — the companion DSN
2001 paper *Reducing Critical Failures for Control Algorithms Using
Executable Assertions and Best Effort Recovery*.  This module
reproduces that workload in miniature: a fixed-point PI(D) speed
controller running as an infinite loop, exchanging sensor/actuator data
with an environment simulator at every iteration boundary (the ITER
instruction), in two variants:

``control_unprotected``
    The plain control law.  A fault corrupting the controller state or
    output goes straight to the actuator.
``control_protected``
    The same law wrapped in *executable assertions* with *best-effort
    recovery*: the sensor value is range-checked (out-of-range readings
    are replaced by the last good value), the integrator is clamped to
    its physical range (anti-windup doubling as state scrubbing), and
    the control output is saturated to the actuator limits.  Every
    assertion firing is counted and reported on output port 2.

Fixed-point format: values are scaled by 2**8; gains are integer
numerators over 2**8.  All memory traffic uses absolute addressing on
named data words so campaigns can target (and observe) the controller
state symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fixed-point scaling of all controller quantities.
FIXED_POINT_SHIFT = 8
FIXED_POINT_ONE = 1 << FIXED_POINT_SHIFT


@dataclass(frozen=True, slots=True)
class ControlParameters:
    """Tunables of the control workload (fixed-point, scaled by 256)."""

    setpoint: int = 100 * FIXED_POINT_ONE  # target speed
    kp: int = 96  # proportional gain numerator (kp/256)
    ki: int = 32  # integral gain numerator
    kd: int = 16  # derivative gain numerator
    u_max: int = 200 * FIXED_POINT_ONE  # actuator saturation
    u_min: int = -200 * FIXED_POINT_ONE
    sensor_max: int = 400 * FIXED_POINT_ONE  # plausible speed range
    sensor_min: int = -400 * FIXED_POINT_ONE
    integral_max: int = 1500 * FIXED_POINT_ONE  # anti-windup clamp
    integral_min: int = -1500 * FIXED_POINT_ONE


_COMMON_HEAD = """
_start:
    BR loop
loop:
    LDA r1, sensor
"""

_COMPUTE_LAW = """
    LDA r2, setpoint
    SUB r3, r2, r1      ; e = setpoint - speed
    LDA r4, integral
    ADD r4, r4, r3      ; integral += e
{integral_guard}
    STA r4, integral
    LDA r5, prev_e
    SUB r6, r3, r5      ; de = e - prev_e
    STA r3, prev_e
    LDA r7, kp
    MUL r7, r7, r3
    LDA r8, ki
    MUL r8, r8, r4
    ADD r7, r7, r8
    LDA r8, kd
    MUL r8, r8, r6
    ADD r7, r7, r8
    LDI r9, {shift}
    SAR r7, r7, r9      ; u = (kp*e + ki*I + kd*de) >> shift
"""

_DATA_SECTION = """
.data
sensor:     .word 0
actuator:   .word 0
setpoint:   .word {setpoint}
integral:   .word 0
prev_e:     .word 0
kp:         .word {kp}
ki:         .word {ki}
kd:         .word {kd}
u_max:      .word {u_max}
u_min:      .word {u_min}
s_max:      .word {sensor_max}
s_min:      .word {sensor_min}
i_max:      .word {integral_max}
i_min:      .word {integral_min}
good_sensor: .word 0
viol_count: .word 0
"""


def unprotected_source(params: ControlParameters | None = None) -> str:
    """The plain PID loop, no assertions."""
    params = params or ControlParameters()
    body = (
        _COMMON_HEAD
        + _COMPUTE_LAW.format(integral_guard="", shift=FIXED_POINT_SHIFT)
        + """
    STA r7, actuator
    OUT r7, 1
    ITER
    BR loop
"""
        + _DATA_SECTION.format(**_data_values(params))
    )
    return body


def protected_source(params: ControlParameters | None = None) -> str:
    """PID loop with executable assertions and best-effort recovery."""
    params = params or ControlParameters()
    sensor_guard = """
    LDA r10, s_max
    CMP r1, r10
    BGT sensor_bad
    LDA r10, s_min
    CMP r1, r10
    BLT sensor_bad
    STA r1, good_sensor ; reading plausible: remember it
    BR sensor_ok
sensor_bad:
    LDA r1, good_sensor ; best-effort recovery: reuse last good value
    CALL count_violation
sensor_ok:
"""
    integral_guard = """
    LDA r10, i_max
    CMP r4, r10
    BLE int_high_ok
    MOV r4, r10         ; clamp runaway integrator
    CALL count_violation
int_high_ok:
    LDA r10, i_min
    CMP r4, r10
    BGE int_low_ok
    MOV r4, r10
    CALL count_violation
int_low_ok:
"""
    output_guard = """
    LDA r10, u_max
    CMP r7, r10
    BLE u_high_ok
    MOV r7, r10         ; saturate actuator command
    CALL count_violation
u_high_ok:
    LDA r10, u_min
    CMP r7, r10
    BGE u_low_ok
    MOV r7, r10
    CALL count_violation
u_low_ok:
"""
    tail = """
    STA r7, actuator
    OUT r7, 1
    LDA r11, viol_count
    OUT r11, 2
    ITER
    BR loop
count_violation:
    LDA r11, viol_count
    ADDI r11, r11, 1
    STA r11, viol_count
    RET
"""
    return (
        _COMMON_HEAD
        + sensor_guard
        + _COMPUTE_LAW.format(integral_guard=integral_guard, shift=FIXED_POINT_SHIFT)
        + output_guard
        + tail
        + _DATA_SECTION.format(**_data_values(params))
    )


def _data_values(params: ControlParameters) -> dict:
    return {
        "setpoint": params.setpoint,
        "kp": params.kp,
        "ki": params.ki,
        "kd": params.kd,
        "u_max": params.u_max,
        "u_min": params.u_min,
        "sensor_max": params.sensor_max,
        "sensor_min": params.sensor_min,
        "integral_max": params.integral_max,
        "integral_min": params.integral_min,
    }


CONTROL_SOURCES: dict[str, str] = {
    "control_unprotected": unprotected_source(),
    "control_protected": protected_source(),
}
