"""Environment simulators (paper Figure 1, §3.2).

"During each loop iteration, data may be exchanged with a user provided
environment simulator emulating the target system environment" — the
user names the simulator program and "the memory locations holding
output and input data within the target system as well as the points in
time the data exchange occurs, e.g. when each loop iteration finishes".

An environment simulator is any object with an
``exchange(target, iteration)`` method; ``target`` offers
``read_memory(address, count)`` and ``write_memory(address, words)``.
At every ITER boundary the test card invokes the exchange: the simulator
reads the workload's *output* location (the actuator command), advances
its physical model, and writes the workload's *input* location (the
sensor reading).

Two plant models are provided — a DC motor (speed control, the shape of
the companion control study) and a water tank (level control).  Both
use the same 8-bit fixed-point scaling as the control workloads and are
exactly reproducible offline from a logged actuator sequence, which is
how the analysis layer decides whether a faulty run violated the safety
envelope (a *critical failure*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .control import FIXED_POINT_ONE

_WORD_MASK = 0xFFFFFFFF


def to_signed32(value: int) -> int:
    value &= _WORD_MASK
    return value - 0x100000000 if value & 0x80000000 else value


def to_word32(value: int) -> int:
    return int(value) & _WORD_MASK


@dataclass(slots=True)
class DCMotor:
    """First-order DC-motor speed model.

    ``speed' = decay * speed + gain * u - load`` per exchange, in
    fixed-point (scaled by 256).  ``decay``/``gain`` are expressed as
    numerators over 256 so the offline replay is exact integer
    arithmetic.  ``critical_speed`` defines the safety envelope used by
    the critical-failure analysis.
    """

    sensor_addr: int
    actuator_addr: int
    decay: int = 230  # speed retention per step (230/256 ~ 0.9)
    gain: int = 32  # actuator effectiveness (32/256)
    load: int = 2 * FIXED_POINT_ONE  # constant load torque
    critical_speed: int = 350 * FIXED_POINT_ONE
    speed: int = 0
    #: (iteration, u, speed) per exchange, for tests and benches.
    history: list[tuple[int, int, int]] = field(default_factory=list)
    critical_failure: bool = False

    def step(self, u: int) -> int:
        """Advance the plant one step with actuator command ``u`` and
        return the new speed (both fixed-point signed)."""
        self.speed = (self.decay * self.speed + self.gain * u) // 256 - self.load
        if abs(self.speed) > self.critical_speed:
            self.critical_failure = True
        return self.speed

    def exchange(self, target, iteration: int) -> None:
        u = to_signed32(target.read_memory(self.actuator_addr, 1)[0])
        speed = self.step(u)
        target.write_memory(self.sensor_addr, [to_word32(speed)])
        self.history.append((iteration, u, speed))


@dataclass(slots=True)
class WaterTank:
    """Integrating water-tank level model: ``level' = level + inflow(u)
    - outflow(level)``, clamped at empty; overflow above ``capacity`` is
    the critical failure."""

    sensor_addr: int
    actuator_addr: int
    inflow_gain: int = 16  # per-256 of the valve command
    outflow_rate: int = 8  # per-256 of the current level
    capacity: int = 300 * FIXED_POINT_ONE
    level: int = 50 * FIXED_POINT_ONE
    history: list[tuple[int, int, int]] = field(default_factory=list)
    critical_failure: bool = False

    def step(self, u: int) -> int:
        inflow = (self.inflow_gain * max(0, u)) // 256
        outflow = (self.outflow_rate * self.level) // 256
        self.level = max(0, self.level + inflow - outflow)
        if self.level > self.capacity:
            self.critical_failure = True
        return self.level

    def exchange(self, target, iteration: int) -> None:
        u = to_signed32(target.read_memory(self.actuator_addr, 1)[0])
        level = self.step(u)
        target.write_memory(self.sensor_addr, [to_word32(level)])
        self.history.append((iteration, u, level))


def replay_dc_motor(u_sequence: list[int], **params) -> tuple[list[int], bool]:
    """Offline replay of the DC-motor model over a logged actuator
    sequence.  Returns the speed trajectory and whether the safety
    envelope was violated — the critical-failure criterion of the
    control-application experiments (E6)."""
    motor = DCMotor(sensor_addr=0, actuator_addr=0, **params)
    trajectory = [motor.step(to_signed32(u)) for u in u_sequence]
    return trajectory, motor.critical_failure


def replay_water_tank(u_sequence: list[int], **params) -> tuple[list[int], bool]:
    """Offline replay of the water-tank model over a logged valve-command
    sequence — the water-tank counterpart of :func:`replay_dc_motor`, so
    critical-failure (overflow) analysis works for both plants.  Returns
    the level trajectory and whether the tank overflowed."""
    tank = WaterTank(sensor_addr=0, actuator_addr=0, **params)
    trajectory = [tank.step(to_signed32(u)) for u in u_sequence]
    return trajectory, tank.critical_failure


#: Offline replay function per registered plant model, keyed by the
#: environment-simulator name stored in campaign configurations.  The
#: analysis layer (and ``goofi gate``) looks the plant up here instead
#: of hard-coding one model.
REPLAY_FUNCTIONS = {
    "dc_motor": replay_dc_motor,
    "water_tank": replay_water_tank,
}


# ----------------------------------------------------------------------
# Environment-boundary fault injection
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class EnvFaultConfig:
    """Fault layer at the environment-exchange boundary.

    Each knob is an independent per-exchange (or per-write) probability
    in ``[0, 1]``; all default to 0, making the wrapper a transparent
    pass-through.  ``seed`` drives a dedicated RNG stream, so enabled
    faults are deterministic per experiment regardless of worker count
    (the simulator — wrapper included — is recreated per experiment).

    * ``drop_probability`` — the whole exchange is skipped: the plant
      does not step and the sensor is not refreshed (a lost I/O
      transaction).
    * ``delay_probability`` — the exchange runs, but the sensor write
      delivers the *previous* exchange's value (one-exchange-stale
      data); the fresh value is held for the next delivery.
    * ``corrupt_probability`` — one random bit of each written sensor
      word is inverted (sensor-value corruption).
    * ``partial_write_probability`` — only the low ``partial_bits`` bits
      of each written word land; the high bits keep the old memory
      contents (a torn/partial write).
    """

    drop_probability: float = 0.0
    delay_probability: float = 0.0
    corrupt_probability: float = 0.0
    partial_write_probability: float = 0.0
    partial_bits: int = 16
    word_bits: int = 32
    seed: int = 1

    def __post_init__(self) -> None:
        # The workloads layer never imports the core layer, so invalid
        # values raise ValueError; repro.core.packs re-wraps it as a
        # ConfigurationError for pack validation.
        for name in (
            "drop_probability",
            "delay_probability",
            "corrupt_probability",
            "partial_write_probability",
        ):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or not 0.0 <= float(value) <= 1.0:
                raise ValueError(
                    f"environment fault {name} must be in [0, 1], not {value!r}"
                )
        if not 0 < self.partial_bits < self.word_bits:
            raise ValueError(
                f"partial_bits must be in (0, {self.word_bits}), "
                f"not {self.partial_bits!r}"
            )

    @property
    def enabled(self) -> bool:
        return any(
            p > 0.0
            for p in (
                self.drop_probability,
                self.delay_probability,
                self.corrupt_probability,
                self.partial_write_probability,
            )
        )

    def to_dict(self) -> dict:
        return {
            "drop_probability": self.drop_probability,
            "delay_probability": self.delay_probability,
            "corrupt_probability": self.corrupt_probability,
            "partial_write_probability": self.partial_write_probability,
            "partial_bits": self.partial_bits,
            "word_bits": self.word_bits,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnvFaultConfig":
        if not isinstance(data, dict):
            raise ValueError(
                f"environment faults payload must be a mapping, got {data!r}"
            )
        known = {
            "drop_probability",
            "delay_probability",
            "corrupt_probability",
            "partial_write_probability",
            "partial_bits",
            "word_bits",
            "seed",
        }
        unexpected = sorted(set(data) - known)
        if unexpected:
            raise ValueError(
                f"environment faults payload {data!r} has unknown key(s) "
                f"{', '.join(unexpected)}; accepted: {', '.join(sorted(known))}"
            )
        return cls(
            drop_probability=float(data.get("drop_probability", 0.0)),
            delay_probability=float(data.get("delay_probability", 0.0)),
            corrupt_probability=float(data.get("corrupt_probability", 0.0)),
            partial_write_probability=float(
                data.get("partial_write_probability", 0.0)
            ),
            partial_bits=int(data.get("partial_bits", 16)),
            word_bits=int(data.get("word_bits", 32)),
            seed=int(data.get("seed", 1)),
        )


class _FaultyIO:
    """Target proxy handed to the wrapped simulator for one exchange:
    reads pass through untouched, writes are filtered through the fault
    layer.  Anything else the simulator touches is forwarded."""

    __slots__ = ("_target", "_injector")

    def __init__(self, target, injector: "EnvironmentFaultInjector") -> None:
        self._target = target
        self._injector = injector

    def read_memory(self, address: int, count: int = 1) -> list[int]:
        return self._target.read_memory(address, count)

    def write_memory(self, address: int, words) -> None:
        self._injector._filtered_write(self._target, address, words)

    def __getattr__(self, name: str):
        if name in _FaultyIO.__slots__:
            raise AttributeError(name)
        return getattr(self._target, name)


class EnvironmentFaultInjector:
    """Fault-capable wrapper around any environment simulator.

    Wraps an object with ``exchange(target, iteration)`` and injects
    faults at the exchange boundary per :class:`EnvFaultConfig`.  With
    every probability at 0 the wrapper is a pure pass-through: the inner
    simulator sees the same reads and performs the same writes, so
    campaign rows are bit-identical to an unwrapped run.  Composes with
    scan-chain faults (it never touches scan state) and is deep-copyable
    (checkpoint save/restore snapshots the RNG stream along with the
    plant).

    Unknown attributes forward to the wrapped simulator, so analysis
    code reading ``history`` or ``critical_failure`` keeps working.
    """

    def __init__(self, simulator, config: EnvFaultConfig) -> None:
        import numpy as np

        self.simulator = simulator
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        #: Per-address held-back words for delayed deliveries.
        self._held: dict[int, list[int]] = {}
        #: Injected-fault counters, for tests and reports.
        self.fault_counts = {
            "dropped": 0,
            "delayed": 0,
            "corrupted": 0,
            "partial": 0,
        }

    def __getattr__(self, name: str):
        # Guard against recursion during deepcopy/unpickling, which
        # probes attributes before __init__ has populated __dict__.
        if name.startswith("_") or "simulator" not in self.__dict__:
            raise AttributeError(name)
        return getattr(self.simulator, name)

    # ------------------------------------------------------------------
    def exchange(self, target, iteration: int) -> None:
        config = self.config
        if config.drop_probability > 0.0 and (
            float(self._rng.random()) < config.drop_probability
        ):
            self.fault_counts["dropped"] += 1
            return
        self.simulator.exchange(_FaultyIO(target, self), iteration)

    # ------------------------------------------------------------------
    def _filtered_write(self, target, address: int, words) -> None:
        config = self.config
        if isinstance(words, int):
            words = [words]
        words = list(words)
        if config.delay_probability > 0.0 and (
            float(self._rng.random()) < config.delay_probability
        ):
            held = self._held.get(address)
            self._held[address] = words
            self.fault_counts["delayed"] += 1
            if held is None:
                return  # nothing staged yet: the first delivery is lost
            words = held
        elif address in self._held:
            # Normal delivery flushes any staged value first: the stale
            # word arrives one exchange late, then freshness recovers.
            words = self._held.pop(address)
        if config.corrupt_probability > 0.0:
            corrupted = []
            for word in words:
                if float(self._rng.random()) < config.corrupt_probability:
                    bit = int(self._rng.integers(config.word_bits))
                    word = int(word) ^ (1 << bit)
                    self.fault_counts["corrupted"] += 1
                corrupted.append(word)
            words = corrupted
        if config.partial_write_probability > 0.0:
            low_mask = (1 << config.partial_bits) - 1
            partial = []
            for offset, word in enumerate(words):
                if float(self._rng.random()) < config.partial_write_probability:
                    old = target.read_memory(address + offset, 1)[0]
                    word = (int(old) & ~low_mask) | (int(word) & low_mask)
                    self.fault_counts["partial"] += 1
                partial.append(word)
            words = partial
        target.write_memory(address, words)


def wrap_environment(simulator, faults: dict | EnvFaultConfig | None):
    """Wrap ``simulator`` in an :class:`EnvironmentFaultInjector` when a
    fault configuration is given; pass it through untouched otherwise.
    The campaign engines call this with the ``faults`` sub-dict of the
    campaign's ``environment`` configuration."""
    if faults is None:
        return simulator
    if not isinstance(faults, EnvFaultConfig):
        faults = EnvFaultConfig.from_dict(faults)
    return EnvironmentFaultInjector(simulator, faults)
