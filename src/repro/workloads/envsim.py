"""Environment simulators (paper Figure 1, §3.2).

"During each loop iteration, data may be exchanged with a user provided
environment simulator emulating the target system environment" — the
user names the simulator program and "the memory locations holding
output and input data within the target system as well as the points in
time the data exchange occurs, e.g. when each loop iteration finishes".

An environment simulator is any object with an
``exchange(target, iteration)`` method; ``target`` offers
``read_memory(address, count)`` and ``write_memory(address, words)``.
At every ITER boundary the test card invokes the exchange: the simulator
reads the workload's *output* location (the actuator command), advances
its physical model, and writes the workload's *input* location (the
sensor reading).

Two plant models are provided — a DC motor (speed control, the shape of
the companion control study) and a water tank (level control).  Both
use the same 8-bit fixed-point scaling as the control workloads and are
exactly reproducible offline from a logged actuator sequence, which is
how the analysis layer decides whether a faulty run violated the safety
envelope (a *critical failure*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .control import FIXED_POINT_ONE

_WORD_MASK = 0xFFFFFFFF


def to_signed32(value: int) -> int:
    value &= _WORD_MASK
    return value - 0x100000000 if value & 0x80000000 else value


def to_word32(value: int) -> int:
    return int(value) & _WORD_MASK


@dataclass(slots=True)
class DCMotor:
    """First-order DC-motor speed model.

    ``speed' = decay * speed + gain * u - load`` per exchange, in
    fixed-point (scaled by 256).  ``decay``/``gain`` are expressed as
    numerators over 256 so the offline replay is exact integer
    arithmetic.  ``critical_speed`` defines the safety envelope used by
    the critical-failure analysis.
    """

    sensor_addr: int
    actuator_addr: int
    decay: int = 230  # speed retention per step (230/256 ~ 0.9)
    gain: int = 32  # actuator effectiveness (32/256)
    load: int = 2 * FIXED_POINT_ONE  # constant load torque
    critical_speed: int = 350 * FIXED_POINT_ONE
    speed: int = 0
    #: (iteration, u, speed) per exchange, for tests and benches.
    history: list[tuple[int, int, int]] = field(default_factory=list)
    critical_failure: bool = False

    def step(self, u: int) -> int:
        """Advance the plant one step with actuator command ``u`` and
        return the new speed (both fixed-point signed)."""
        self.speed = (self.decay * self.speed + self.gain * u) // 256 - self.load
        if abs(self.speed) > self.critical_speed:
            self.critical_failure = True
        return self.speed

    def exchange(self, target, iteration: int) -> None:
        u = to_signed32(target.read_memory(self.actuator_addr, 1)[0])
        speed = self.step(u)
        target.write_memory(self.sensor_addr, [to_word32(speed)])
        self.history.append((iteration, u, speed))


@dataclass(slots=True)
class WaterTank:
    """Integrating water-tank level model: ``level' = level + inflow(u)
    - outflow(level)``, clamped at empty; overflow above ``capacity`` is
    the critical failure."""

    sensor_addr: int
    actuator_addr: int
    inflow_gain: int = 16  # per-256 of the valve command
    outflow_rate: int = 8  # per-256 of the current level
    capacity: int = 300 * FIXED_POINT_ONE
    level: int = 50 * FIXED_POINT_ONE
    history: list[tuple[int, int, int]] = field(default_factory=list)
    critical_failure: bool = False

    def step(self, u: int) -> int:
        inflow = (self.inflow_gain * max(0, u)) // 256
        outflow = (self.outflow_rate * self.level) // 256
        self.level = max(0, self.level + inflow - outflow)
        if self.level > self.capacity:
            self.critical_failure = True
        return self.level

    def exchange(self, target, iteration: int) -> None:
        u = to_signed32(target.read_memory(self.actuator_addr, 1)[0])
        level = self.step(u)
        target.write_memory(self.sensor_addr, [to_word32(level)])
        self.history.append((iteration, u, level))


def replay_dc_motor(u_sequence: list[int], **params) -> tuple[list[int], bool]:
    """Offline replay of the DC-motor model over a logged actuator
    sequence.  Returns the speed trajectory and whether the safety
    envelope was violated — the critical-failure criterion of the
    control-application experiments (E6)."""
    motor = DCMotor(sensor_addr=0, actuator_addr=0, **params)
    trajectory = [motor.step(to_signed32(u)) for u in u_sequence]
    return trajectory, motor.critical_failure
